// Service-layer tests: protocol framing and (de)serialization, then a real
// daemon on a real Unix-domain socket — submit/fetch round trips, concurrent
// clients, queue-full backpressure, cancel semantics, graceful drain, warm
// cache-hit accounting, and the determinism guarantee that a warm-cache
// remote result is byte-identical to a cold local run.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "serve/transport.hpp"
#include "sim/prepare.hpp"
#include "sim/report.hpp"

namespace mlp::serve {
namespace {

// ---- framing ---------------------------------------------------------------

TEST(Framing, RoundTripsPayloads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<std::string> payloads = {"{}", std::string(4096, 'x')};
  for (const std::string& payload : payloads) {
    ASSERT_TRUE(write_frame(fds[0], payload));
    const std::optional<std::string> got = read_frame(fds[1]);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
  }
  ::close(fds[0]);
  const std::optional<std::string> eof = read_frame(fds[1]);
  EXPECT_FALSE(eof.has_value());  // clean EOF between frames
  ::close(fds[1]);
}

TEST(Framing, ZeroLengthFramesAreTypedRejections) {
  // Every legitimate frame is a JSON object, so a zero-length frame is a
  // desynced or broken peer — both read variants must reject it with the
  // typed bad-request kind instead of handing "" to the JSON parser.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(write_frame(fds[0], ""));
  try {
    read_frame(fds[1]);
    FAIL() << "zero-length frame must throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), kErrBadRequest);
  }
  ASSERT_TRUE(write_frame(fds[0], "", /*timeout_ms=*/1000));
  try {
    read_frame(fds[1], /*timeout_ms=*/1000);
    FAIL() << "zero-length frame must throw (deadline variant)";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), kErrBadRequest);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Framing, RejectsOversizedAndTruncatedFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Length header claiming 1 GB: protocol violation before any payload.
  const unsigned char huge[4] = {0, 0, 0, 0x40};
  ASSERT_EQ(::write(fds[0], huge, 4), 4);
  EXPECT_THROW(read_frame(fds[1]), SimError);
  // Header promising 100 bytes, then EOF: truncated frame.
  const unsigned char short_frame[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds[0], short_frame, 4), 4);
  ::close(fds[0]);
  EXPECT_THROW(read_frame(fds[1]), SimError);
  ::close(fds[1]);
}

TEST(Framing, DeadlineTripsOnASilentPeerAndPassesOnALiveOne) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Nothing in flight: a bounded read must trip the typed timeout instead
  // of blocking forever.
  const auto start = std::chrono::steady_clock::now();
  try {
    read_frame(fds[1], /*timeout_ms=*/150);
    FAIL() << "bounded read of a silent peer returned";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), kErrTimeout);
  }
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  EXPECT_GE(waited_ms, 100.0);
  // With data available the bounded variants behave like the untimed ones.
  ASSERT_TRUE(write_frame(fds[0], "{\"ok\":true}", /*timeout_ms=*/1000));
  const std::optional<std::string> got = read_frame(fds[1], 1000);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "{\"ok\":true}");
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---- job (de)serialization -------------------------------------------------

TEST(JobJson, RoundTripsEveryField) {
  JobSpec spec;
  spec.job.kind = arch::ArchKind::kVwsRow;
  spec.job.bench = "kmeans";
  spec.job.tag = "point-7";
  spec.job.options.records = 4096;
  spec.job.options.rows = 96;
  spec.job.options.seed = 11;
  spec.job.options.record_barrier = true;
  spec.job.options.cfg.core.cores = 64;
  spec.job.options.cfg.gpgpu.warp_width = 64;
  spec.job.options.cfg.millipede.pf_entries = 8;
  spec.job.options.cfg.dram.bus_efficiency = 0.5;
  spec.job.options.cfg.slab_layout = true;
  spec.job.options.cfg.dram.fault.bit_flip_rate = 1e-7;
  spec.job.options.cfg.dram.fault.ecc = true;
  spec.job.options.cfg.dram.fault.seed = 3;
  spec.job.options.cfg.watchdog.max_cycles = 123456;
  spec.job.options.cfg.watchdog.wall_ms = 90000;
  spec.job.options.trace.chrome_json = true;
  spec.job.options.trace.dir = "/tmp/traces";
  spec.hold_ms = 250;

  const JobSpec back = job_from_json(trace::json_parse(job_json(spec)));
  EXPECT_EQ(back.job.kind, spec.job.kind);
  EXPECT_EQ(back.job.bench, spec.job.bench);
  EXPECT_EQ(back.job.tag, spec.job.tag);
  EXPECT_EQ(back.job.options.records, 4096u);
  EXPECT_EQ(back.job.options.rows, 96u);
  EXPECT_EQ(back.job.options.seed, 11u);
  EXPECT_TRUE(back.job.options.record_barrier);
  EXPECT_EQ(back.job.options.cfg.core.cores, 64u);
  EXPECT_EQ(back.job.options.cfg.gpgpu.warp_width, 64u);
  EXPECT_EQ(back.job.options.cfg.millipede.pf_entries, 8u);
  EXPECT_DOUBLE_EQ(back.job.options.cfg.dram.bus_efficiency, 0.5);
  EXPECT_TRUE(back.job.options.cfg.slab_layout);
  EXPECT_DOUBLE_EQ(back.job.options.cfg.dram.fault.bit_flip_rate, 1e-7);
  EXPECT_TRUE(back.job.options.cfg.dram.fault.ecc);
  EXPECT_EQ(back.job.options.cfg.dram.fault.seed, 3u);
  EXPECT_EQ(back.job.options.cfg.watchdog.max_cycles, 123456u);
  EXPECT_EQ(back.job.options.cfg.watchdog.wall_ms, 90000u);
  EXPECT_TRUE(back.job.options.trace.chrome_json);
  EXPECT_EQ(back.job.options.trace.dir, "/tmp/traces");
  EXPECT_EQ(back.hold_ms, 250u);
}

TEST(JobJson, RejectsMalformedSpecs) {
  const auto parse = [](const std::string& text) {
    return job_from_json(trace::json_parse(text));
  };
  EXPECT_THROW(parse(R"({"bench":"count","no_such_knob":1})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","arch":"cray"})"), SimError);
  EXPECT_THROW(parse(R"({})"), SimError);  // bench is required
  EXPECT_THROW(parse(R"({"bench":"count","rows":"many"})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","cores":0})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","fault_rate":1.5})"), SimError);
  EXPECT_THROW(parse(R"({"bench":"count","ecc":"yes"})"), SimError);
  EXPECT_THROW(parse(R"([1,2,3])"), SimError);
}

// ---- transport -------------------------------------------------------------

TEST(Transport, EndpointGrammar) {
  const Endpoint tcp = parse_endpoint("127.0.0.1:7411");
  EXPECT_EQ(tcp.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 7411);
  EXPECT_EQ(endpoint_name(tcp), "127.0.0.1:7411");

  EXPECT_EQ(parse_endpoint("node-3:80").kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(parse_endpoint("host:0").port, 0);  // ephemeral-port request

  // Anything with a '/' or a non-numeric suffix is an AF_UNIX path — paths
  // containing colons (systemd-style names) must not be misread as TCP.
  EXPECT_EQ(parse_endpoint("/tmp/mlp.sock").kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(parse_endpoint("/tmp/web:80/x.sock").kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(parse_endpoint("mlp.sock").kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(parse_endpoint("host:http").kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(parse_endpoint(":123").kind, Endpoint::Kind::kUnix);

  EXPECT_THROW(parse_endpoint("host:99999"), SimError);  // port > 65535
}

TEST(Transport, ConnectRefusedIsATypedServeError) {
  // A dead peer must surface as SimError("serve", ...) from connect — the
  // sharded sweep turns exactly this into node-lost rows.
  try {
    connect_endpoint(parse_endpoint("/tmp/mlpserve-no-such-socket.sock"));
    FAIL() << "connect to a nonexistent socket succeeded";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "serve");
    EXPECT_NE(std::string(e.what()).find("connect"), std::string::npos);
  }
  Client client;
  EXPECT_THROW(client.connect("/tmp/mlpserve-no-such-socket.sock"), SimError);
  EXPECT_FALSE(client.connected());
}

// ---- chaos -----------------------------------------------------------------

TEST(Chaos, SpecGrammar) {
  const ChaosConfig cfg =
      parse_chaos("drop=0.05,delay=0.1,delay-ms=35,truncate=0.01,close=0.02,"
                  "seed=7");
  EXPECT_DOUBLE_EQ(cfg.drop_rate, 0.05);
  EXPECT_DOUBLE_EQ(cfg.delay_rate, 0.1);
  EXPECT_EQ(cfg.delay_ms, 35u);
  EXPECT_DOUBLE_EQ(cfg.truncate_rate, 0.01);
  EXPECT_DOUBLE_EQ(cfg.close_rate, 0.02);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_TRUE(cfg.enabled());
  EXPECT_FALSE(ChaosConfig{}.enabled());

  EXPECT_THROW(parse_chaos("explode=0.5"), SimError);   // unknown knob
  EXPECT_THROW(parse_chaos("drop=1.5"), SimError);      // rate > 1
  EXPECT_THROW(parse_chaos("drop=-0.1"), SimError);     // negative rate
  EXPECT_THROW(parse_chaos("drop"), SimError);          // missing '='
  EXPECT_THROW(parse_chaos("drop=lots"), SimError);     // non-numeric
}

TEST(Chaos, InjectorIsDeterministicPerSeedAndConnection) {
  ChaosConfig cfg;
  cfg.drop_rate = 0.1;
  cfg.delay_rate = 0.2;
  cfg.truncate_rate = 0.1;
  cfg.close_rate = 0.1;
  cfg.seed = 42;

  const auto sequence = [&cfg](u64 connection_id) {
    ChaosInjector injector(cfg, connection_id);
    std::vector<ChaosInjector::Action> actions;
    for (int i = 0; i < 256; ++i) actions.push_back(injector.next());
    return actions;
  };

  // Same seed + same connection: the exact same fault schedule, replayable
  // from a bug report. Different connections: decorrelated schedules.
  EXPECT_EQ(sequence(0), sequence(0));
  EXPECT_EQ(sequence(7), sequence(7));
  EXPECT_NE(sequence(0), sequence(1));

  // With ~50% total fault rate, 256 draws must inject at least once and
  // leave at least one frame untouched.
  const std::vector<ChaosInjector::Action> actions = sequence(0);
  EXPECT_NE(std::count(actions.begin(), actions.end(),
                       ChaosInjector::Action::kNone),
            0);
  EXPECT_NE(std::count(actions.begin(), actions.end(),
                       ChaosInjector::Action::kNone),
            256);
}

TEST(Transport, HungPeerTripsTheRequestDeadline) {
  // A listener whose backlog accepts the connect but whose owner never
  // reads: exactly what a SIGSTOPped daemon looks like. The request
  // deadline must convert the hang into a typed timeout and poison the
  // connection.
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = "/tmp/mlpserve-hung-peer-" + std::to_string(::getpid()) + ".sock";
  const int listener = listen_endpoint(ep);

  ClientOptions options;
  options.connect_timeout_ms = 1000;
  options.request_timeout_ms = 200;
  options.chaos = ChaosConfig{};
  Client client(options);
  client.connect(ep.path);
  ASSERT_TRUE(client.connected());
  try {
    client.ping();
    FAIL() << "ping of a hung peer returned";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), kErrTimeout);
  }
  // The deadline poisons the connection — no half-read frame can desync a
  // later request.
  EXPECT_FALSE(client.connected());
  ::close(listener);
  ::unlink(ep.path.c_str());
}

TEST(Responses, EnvelopeDecodes) {
  const Response pong = parse_response(pong_response());
  EXPECT_TRUE(pong.ok);
  EXPECT_EQ(pong.type, "pong");
  EXPECT_EQ(pong.doc.u64_at("protocol_version"), kProtocolVersion);

  const Response err =
      parse_response(error_response(kErrQueueFull, "queue full"));
  EXPECT_FALSE(err.ok);
  EXPECT_EQ(err.error, kErrQueueFull);
  EXPECT_EQ(err.message, "queue full");

  const Response sub = parse_response(submitted_response(42));
  EXPECT_TRUE(sub.ok);
  EXPECT_EQ(sub.doc.u64_at("id"), 42u);

  EXPECT_THROW(parse_response("[]"), SimError);
  EXPECT_THROW(parse_response(R"({"type":"x"})"), SimError);  // no "ok"
}

// ---- live daemon -----------------------------------------------------------

/// Starts a Server on a short /tmp socket path (or, when the config names a
/// TCP listen address and no socket path, TCP only) and runs its accept loop
/// on a background thread; tears it down (drain + join) on destruction.
class LiveServer {
 public:
  explicit LiveServer(ServeConfig cfg) : server_([&cfg] {
    if (cfg.socket_path.empty() && cfg.listen_address.empty()) {
      static int counter = 0;
      cfg.socket_path = "/tmp/mlpserve-test-" + std::to_string(::getpid()) +
                        "-" + std::to_string(counter++) + ".sock";
    }
    return cfg;
  }()) {
    server_.listen();
    thread_ = std::thread([this] { server_.run(); });
  }

  ~LiveServer() { stop(); }

  void stop() {
    server_.request_stop();
    if (thread_.joinable()) thread_.join();
  }

  Server& server() { return server_; }
  const std::string& path() const { return server_.socket_path(); }

 private:
  Server server_;
  std::thread thread_;
};

JobSpec small_job(const std::string& bench, arch::ArchKind kind =
                                                arch::ArchKind::kMillipede) {
  JobSpec spec;
  spec.job.kind = kind;
  spec.job.bench = bench;
  spec.job.options.records = 1024;
  return spec;
}

TEST(Service, SubmitFetchRoundTrip) {
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());

  const Response pong = client.ping();
  ASSERT_TRUE(pong.ok);

  const Response sub = client.submit(small_job("count"));
  ASSERT_TRUE(sub.ok) << sub.message;
  const u64 id = sub.doc.u64_at("id");

  const Response result = client.result(id, /*wait=*/true);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_EQ(result.doc.str_at("state"), "done");
  EXPECT_TRUE(result.doc.find("run_ok")->boolean);
  // The CSV row and stats object are server-rendered with the shared
  // formatting code, so they match a local run byte for byte.
  const sim::MatrixResult local = sim::run_job(small_job("count").job);
  EXPECT_EQ(result.doc.str_at("csv"), sim::sweep_csv_row(local));
  EXPECT_EQ(result.doc.str_at("stats"), sim::stats_json_run(local));

  // Unknown jobs and unknown request types are typed errors.
  const Response missing = client.result(9999, false);
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error, kErrNoSuchJob);
  const Response bogus = client.roundtrip(R"({"type":"frobnicate"})");
  EXPECT_FALSE(bogus.ok);
  EXPECT_EQ(bogus.error, kErrBadRequest);
}

TEST(Service, WarmCacheHitsAreReportedAndBitIdentical) {
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());

  // Same preparation key across architectures: millipede cold, then ssmc
  // and a resubmit both warm.
  const u64 id1 = client.submit(small_job("count")).doc.u64_at("id");
  const Response r1 = client.result(id1, true);
  ASSERT_TRUE(r1.ok);
  EXPECT_FALSE(r1.doc.find("cache_hit")->boolean);

  const u64 id2 =
      client.submit(small_job("count", arch::ArchKind::kSsmc)).doc.u64_at("id");
  const Response r2 = client.result(id2, true);
  ASSERT_TRUE(r2.ok);
  EXPECT_TRUE(r2.doc.find("cache_hit")->boolean);

  const u64 id3 = client.submit(small_job("count")).doc.u64_at("id");
  const Response r3 = client.result(id3, true);
  ASSERT_TRUE(r3.ok);
  EXPECT_TRUE(r3.doc.find("cache_hit")->boolean);
  // Warm rerun: byte-identical to the cold run's document.
  EXPECT_EQ(r3.doc.str_at("csv"), r1.doc.str_at("csv"));
  EXPECT_EQ(r3.doc.str_at("stats"), r1.doc.str_at("stats"));

  const Response status = client.server_status();
  ASSERT_TRUE(status.ok);
  const trace::JsonValue* cache = status.doc.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->u64_at("misses"), 1u);
  EXPECT_EQ(cache->u64_at("hits"), 2u);
}

TEST(Service, ConcurrentClientsGetTheirOwnResults) {
  LiveServer live(ServeConfig{"", "", /*threads=*/4, /*queue_limit=*/32});
  const std::vector<std::string> benches = {"count", "sample", "variance",
                                            "kmeans"};
  std::vector<std::string> stats(benches.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < benches.size(); ++i) {
    clients.emplace_back([&, i] {
      Client client;
      client.connect(live.path());
      const Response sub = client.submit(small_job(benches[i]));
      ASSERT_TRUE(sub.ok) << sub.message;
      const Response result = client.result(sub.doc.u64_at("id"), true);
      ASSERT_TRUE(result.ok) << result.message;
      stats[i] = result.doc.str_at("stats");
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < benches.size(); ++i) {
    const sim::MatrixResult local = sim::run_job(small_job(benches[i]).job);
    EXPECT_EQ(stats[i], sim::stats_json_run(local)) << benches[i];
  }
}

TEST(Service, QueueFullIsATypedRejectionNotADrop) {
  // One worker, admission bound 2: a held job pins the worker while staying
  // queued, a second waits in the pool queue, and the third submit must be
  // rejected — deterministically, with the typed queue-full error.
  LiveServer live(ServeConfig{"", "", /*threads=*/1, /*queue_limit=*/2});
  Client client;
  client.connect(live.path());

  JobSpec held = small_job("count");
  held.hold_ms = 60'000;  // released early by drain; never waited out
  const Response first = client.submit(held);
  ASSERT_TRUE(first.ok);
  const Response second = client.submit(small_job("sample"));
  ASSERT_TRUE(second.ok);

  const Response rejected = client.submit(small_job("variance"));
  ASSERT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, kErrQueueFull);

  // Backpressure is recoverable: cancel the held job, slot frees, resubmit
  // succeeds.
  const Response cancelled = client.cancel(first.doc.u64_at("id"));
  ASSERT_TRUE(cancelled.ok) << cancelled.message;
  const Response retried = client.submit(small_job("variance"));
  EXPECT_TRUE(retried.ok) << retried.message;
}

TEST(Service, CancelSemantics) {
  LiveServer live(ServeConfig{"", "", /*threads=*/1, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());

  JobSpec held = small_job("count");
  held.hold_ms = 60'000;
  const u64 held_id = client.submit(held).doc.u64_at("id");
  EXPECT_EQ(client.job_status(held_id).doc.str_at("state"), "queued");

  // Cancelling a queued job works and is idempotent.
  ASSERT_TRUE(client.cancel(held_id).ok);
  EXPECT_EQ(client.job_status(held_id).doc.str_at("state"), "cancelled");
  EXPECT_TRUE(client.cancel(held_id).ok);

  // A cancelled job's result reports the cancellation, not stale data.
  const Response result = client.result(held_id, true);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.doc.str_at("state"), "cancelled");

  // A finished job can no longer be cancelled.
  const u64 done_id = client.submit(small_job("sample")).doc.u64_at("id");
  ASSERT_TRUE(client.result(done_id, true).ok);
  const Response late = client.cancel(done_id);
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.error, kErrJobDone);

  const Response missing = client.cancel(777);
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error, kErrNoSuchJob);
}

TEST(Service, GracefulDrainFinishesAdmittedJobs) {
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/16});
  Client client;
  client.connect(live.path());

  // Three held jobs: drain must cut the holds short and still run them all.
  std::vector<u64> ids;
  for (const char* bench : {"count", "sample", "variance"}) {
    JobSpec spec = small_job(bench);
    spec.hold_ms = 60'000;
    const Response sub = client.submit(spec);
    ASSERT_TRUE(sub.ok) << sub.message;
    ids.push_back(sub.doc.u64_at("id"));
  }

  const Response bye = client.shutdown();
  ASSERT_TRUE(bye.ok);
  EXPECT_EQ(bye.type, "shutting-down");
  live.stop();  // joins run(): returns only after the drain completes

  const ServerStatus status = live.server().status();
  EXPECT_EQ(status.done, 3u);  // every admitted job ran to completion
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(status.running, 0u);
  EXPECT_FALSE(status.accepting);
}

TEST(Service, SubmitAfterShutdownIsRefused) {
  LiveServer live(ServeConfig{"", "", /*threads=*/1, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());
  // Drain only closes connections after running jobs finish, so a slow job
  // holds the window open: the refusal below must be the typed error, not
  // a racy connection drop.
  JobSpec slow = small_job("count");
  slow.job.options.records = u64{1} << 18;
  ASSERT_TRUE(client.submit(slow).ok);
  ASSERT_TRUE(client.shutdown().ok);
  const Response refused = client.submit(small_job("count"));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.error, kErrShuttingDown);
}

TEST(Service, RunMatrixRemoteMatchesLocalBytes) {
  LiveServer live(ServeConfig{"", "", /*threads=*/4, /*queue_limit=*/3});
  Client client;
  client.connect(live.path());

  // 4 architectures × 2 benchmarks through a 3-slot admission window: the
  // sliding-window client must absorb queue-full backpressure and still
  // return every result in submission order.
  std::vector<sim::MatrixJob> jobs;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc,
        arch::ArchKind::kGpgpu, arch::ArchKind::kMulticore}) {
    for (const std::string& bench :
         {std::string("count"), std::string("variance")}) {
      jobs.push_back(small_job(bench, kind).job);
    }
  }
  const std::vector<RemoteResult> remote = run_matrix_remote(client, jobs);
  const std::vector<sim::MatrixResult> local = sim::run_matrix(jobs, 2);

  ASSERT_EQ(remote.size(), local.size());
  std::vector<std::string> remote_stats, local_stats;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(remote[i].ok) << remote[i].message;
    EXPECT_TRUE(remote[i].run_ok);
    EXPECT_EQ(remote[i].csv, sim::sweep_csv_row(local[i]));
    remote_stats.push_back(remote[i].stats_run_json);
    local_stats.push_back(sim::stats_json_run(local[i]));
  }
  // The reassembled remote document equals the local document bit for bit.
  EXPECT_EQ(sim::stats_json_document(remote_stats),
            sim::stats_json(local));
  EXPECT_EQ(sim::stats_json_document(local_stats), sim::stats_json(local));
}

// ---- TCP transport against a live daemon -----------------------------------

TEST(ServiceTcp, SubmitFetchOverTcpMatchesLocalBytes) {
  // TCP-only server on an ephemeral port; the protocol layer must be
  // transport-blind, so the result document is byte-identical to both a
  // Unix-socket fetch and a local run.
  LiveServer live(
      ServeConfig{"", "127.0.0.1:0", /*threads=*/2, /*queue_limit=*/8});
  ASSERT_NE(live.server().tcp_port(), 0);
  const std::string address =
      "127.0.0.1:" + std::to_string(live.server().tcp_port());
  EXPECT_EQ(live.server().tcp_address(), address);

  Client client;
  client.connect(address);
  ASSERT_TRUE(client.ping().ok);
  const Response sub = client.submit(small_job("count"));
  ASSERT_TRUE(sub.ok) << sub.message;
  const Response result = client.result(sub.doc.u64_at("id"), /*wait=*/true);
  ASSERT_TRUE(result.ok) << result.message;
  const sim::MatrixResult local = sim::run_job(small_job("count").job);
  EXPECT_EQ(result.doc.str_at("csv"), sim::sweep_csv_row(local));
  EXPECT_EQ(result.doc.str_at("stats"), sim::stats_json_run(local));
}

TEST(ServiceTcp, FramingViolationsDropThePeerNotTheServer) {
  LiveServer live(
      ServeConfig{"", "127.0.0.1:0", /*threads=*/1, /*queue_limit=*/4});
  const Endpoint ep =
      parse_endpoint("127.0.0.1:" + std::to_string(live.server().tcp_port()));

  // Oversize frame header (1 GB claim): the server must close the
  // connection without reading further.
  {
    const int fd = connect_endpoint(ep);
    const unsigned char huge[4] = {0, 0, 0, 0x40};
    ASSERT_EQ(::write(fd, huge, 4), 4);
    char byte;
    EXPECT_EQ(::read(fd, &byte, 1), 0);  // EOF: peer dropped
    ::close(fd);
  }
  // Truncated frame: a half-written header followed by disconnect must not
  // wedge the accept loop.
  {
    const int fd = connect_endpoint(ep);
    const unsigned char half[2] = {8, 0};
    ASSERT_EQ(::write(fd, half, 2), 2);
    ::close(fd);
  }
  // The daemon survives both: a well-behaved client still gets served.
  Client client;
  client.connect(endpoint_name(ep));
  EXPECT_TRUE(client.ping().ok);
}

// ---- consistent-hash sharding ----------------------------------------------

TEST(Shard, RingAssignmentsAreStableForever) {
  // Sharding keys by prepare-cache identity only keeps per-node caches warm
  // ACROSS sweep invocations if the key→node map never changes for a given
  // node count. These pins are the contract: a hash or ring change that
  // moves them silently discards every node's accumulated cache.
  EXPECT_EQ(sim::stable_hash64("count"), 0x17dacd223e4d716dull);
  EXPECT_EQ(sim::stable_hash64(""), 0xefd01f60ba992926ull);

  const ShardRing two(2), three(3), four(4);
  const struct {
    const char* key;
    std::size_t on_two, on_three, on_four;
  } kPins[] = {
      {"count|n32768|s1|b0|rb64|slab0", 1, 2, 2},
      {"kmeans|n32768|s1|b0|rb64|slab0", 1, 1, 1},
      {"sample|n32768|s1|b0|rb64|slab0", 0, 0, 0},
      {"variance|n32768|s1|b0|rb64|slab0", 1, 1, 1},
      {"pca|n32768|s1|b0|rb64|slab0", 1, 2, 3},
      {"gda|n32768|s1|b0|rb64|slab0", 1, 1, 1},
  };
  for (const auto& pin : kPins) {
    EXPECT_EQ(two.node_for(pin.key), pin.on_two) << pin.key;
    EXPECT_EQ(three.node_for(pin.key), pin.on_three) << pin.key;
    EXPECT_EQ(four.node_for(pin.key), pin.on_four) << pin.key;
  }
}

TEST(Shard, GrowingTheRingOnlyMovesKeysToTheNewNode) {
  // The consistent-hashing property: adding node N+1 splits existing arcs
  // with the new node's points only, so a key either keeps its owner or
  // moves to the NEW node — never between surviving nodes (their caches
  // stay valid).
  for (std::size_t nodes = 1; nodes < 6; ++nodes) {
    const ShardRing before(nodes), after(nodes + 1);
    for (int i = 0; i < 500; ++i) {
      const std::string key = "key" + std::to_string(i);
      const std::size_t old_node = before.node_for(key);
      const std::size_t new_node = after.node_for(key);
      EXPECT_TRUE(new_node == old_node || new_node == nodes)
          << key << " moved " << old_node << " -> " << new_node
          << " when adding node " << nodes;
    }
  }
}

TEST(Shard, VirtualNodesSpreadKeysEvenly) {
  const ShardRing ring(4);
  std::size_t counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 1000; ++i) {
    counts[ring.node_for("key" + std::to_string(i))]++;
  }
  for (const std::size_t count : counts) {
    EXPECT_GE(count, 150u);  // ≥15% each under fair spread of 25%
    EXPECT_LE(count, 400u);
  }
}

TEST(Shard, JobsShardByPrepareKeyNotArchitecture) {
  // Same preparation identity across architectures → same node, so one
  // node's cache serves every arch variant of a grid point.
  const sim::MatrixJob a = small_job("count", arch::ArchKind::kMillipede).job;
  const sim::MatrixJob b = small_job("count", arch::ArchKind::kGpgpu).job;
  for (std::size_t nodes = 1; nodes <= 4; ++nodes) {
    EXPECT_EQ(shard_for_job(a, nodes), shard_for_job(b, nodes));
  }
}

// ---- multi-node sharded sweep ----------------------------------------------

TEST(Sharded, TwoNodesMergeInSubmissionOrderByteIdentically) {
  // Two daemons with DIFFERENT admission bounds: the per-node sliding
  // windows must size independently (a 2-slot node throttles without
  // stalling the 8-slot node), and the merged results must equal a local
  // run byte for byte, in submission order, at any parallelism.
  LiveServer narrow(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/2});
  LiveServer wide(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});

  std::vector<sim::MatrixJob> jobs;
  for (const std::string& bench :
       {std::string("count"), std::string("sample"), std::string("variance"),
        std::string("kmeans")}) {
    for (const arch::ArchKind kind :
         {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc,
          arch::ArchKind::kGpgpu, arch::ArchKind::kMulticore}) {
      jobs.push_back(small_job(bench, kind).job);
    }
  }

  const std::vector<RemoteResult> remote = run_matrix_sharded(
      {narrow.path(), wide.path()}, jobs);
  const std::vector<sim::MatrixResult> local = sim::run_matrix(jobs, 8);

  ASSERT_EQ(remote.size(), local.size());
  std::vector<std::string> remote_stats;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(remote[i].ok) << remote[i].message;
    EXPECT_EQ(remote[i].csv, sim::sweep_csv_row(local[i])) << i;
    remote_stats.push_back(remote[i].stats_run_json);
  }
  EXPECT_EQ(sim::stats_json_document(remote_stats), sim::stats_json(local));

  // Both nodes actually participated — the grid wasn't funneled through one.
  const u64 narrow_done = narrow.server().status().done;
  const u64 wide_done = wide.server().status().done;
  EXPECT_GT(narrow_done, 0u);
  EXPECT_GT(wide_done, 0u);
  EXPECT_EQ(narrow_done + wide_done, jobs.size());
}

/// The six-bench job list whose keys hash to BOTH nodes of a two-member
/// ring (pinned by RingAssignmentsAreStableForever).
std::vector<sim::MatrixJob> two_node_grid() {
  std::vector<sim::MatrixJob> jobs;
  for (const std::string& bench :
       {std::string("count"), std::string("sample"), std::string("variance"),
        std::string("kmeans"), std::string("pca"), std::string("gda")}) {
    jobs.push_back(small_job(bench).job);
  }
  return jobs;
}

/// Fast-failure policy for tests: a dead address is declared dead after
/// ~200 ms instead of the production 5 s startup-retry window.
ShardOptions fast_options() {
  ShardOptions options;
  options.connect_timeout_ms = 200;
  options.request_timeout_ms = 5000;
  options.probe_min_ms = 20;
  options.probe_max_ms = 200;
  return options;
}

TEST(Sharded, DeadNodeFailsOverByteIdentically) {
  // One node of the fleet never existed: with failover (the default) every
  // point it owned re-dispatches to the survivor and the merged output is
  // byte-identical to a healthy run — the sweep result does not betray
  // that a node was lost.
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  const std::string dead = "/tmp/mlpserve-no-such-node.sock";
  const std::vector<sim::MatrixJob> jobs = two_node_grid();

  FleetHealth fleet;
  const std::vector<RemoteResult> results =
      run_matrix_sharded({live.path(), dead}, jobs, fast_options(), &fleet);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].message;
    const sim::MatrixResult local = sim::run_job(jobs[i]);
    EXPECT_EQ(results[i].csv, sim::sweep_csv_row(local)) << i;
  }
  EXPECT_GE(fleet.node_deaths, 1u);
  EXPECT_GT(fleet.failovers, 0u);
  EXPECT_EQ(fleet.points_lost, 0u);
  ASSERT_EQ(fleet.nodes.size(), 2u);
  EXPECT_EQ(fleet.nodes[0].jobs_completed, jobs.size());
  EXPECT_EQ(fleet.nodes[1].jobs_completed, 0u);
}

TEST(Sharded, NoFailoverYieldsTypedRowsNotAHang) {
  // The legacy policy (--no-failover): a dead node's points become typed
  // node-lost rows while the live node's points still serve.
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  const std::string dead = "/tmp/mlpserve-no-such-node.sock";
  const std::vector<sim::MatrixJob> jobs = two_node_grid();

  ShardOptions options = fast_options();
  options.failover = false;
  FleetHealth fleet;
  const std::vector<RemoteResult> results =
      run_matrix_sharded({live.path(), dead}, jobs, options, &fleet);
  ASSERT_EQ(results.size(), jobs.size());
  std::size_t lost = 0, served = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok) {
      ++served;
      const sim::MatrixResult local = sim::run_job(jobs[i]);
      EXPECT_EQ(results[i].csv, sim::sweep_csv_row(local));
    } else {
      ++lost;
      EXPECT_EQ(results[i].error, kErrNodeLost);
      EXPECT_NE(results[i].message.find(dead), std::string::npos);
    }
  }
  // Keys hash to both nodes (pinned by RingAssignmentsAreStableForever), so
  // the sweep must lose SOME points and serve the rest from the live node.
  EXPECT_GT(lost, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(fleet.points_lost, lost);
}

TEST(Sharded, EveryNodeDeadFailsAllPointsNotTheSweep) {
  const std::vector<sim::MatrixJob> jobs = two_node_grid();
  FleetHealth fleet;
  const std::vector<RemoteResult> results = run_matrix_sharded(
      {"/tmp/mlpserve-no-such-a.sock", "/tmp/mlpserve-no-such-b.sock"}, jobs,
      fast_options(), &fleet);
  ASSERT_EQ(results.size(), jobs.size());
  for (const RemoteResult& r : results) {
    EXPECT_EQ(r.error, kErrNodeLost);
    EXPECT_NE(r.message.find("every node is dead"), std::string::npos);
  }
  EXPECT_EQ(fleet.points_lost, jobs.size());
}

TEST(Sharded, HungNodeTripsTheDeadlineAndFailsOver) {
  // A listener that ACCEPTS (kernel backlog) but never answers — the
  // SIGSTOPped-daemon signature. The request deadline must declare it dead
  // and the sweep must finish on the survivor, byte-identically.
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  Endpoint hung_ep;
  hung_ep.kind = Endpoint::Kind::kUnix;
  hung_ep.path = "/tmp/mlpserve-hung-" + std::to_string(::getpid()) + ".sock";
  const int hung_fd = listen_endpoint(hung_ep);
  const std::vector<sim::MatrixJob> jobs = two_node_grid();

  ShardOptions options = fast_options();
  options.request_timeout_ms = 300;  // the hang detector under test
  FleetHealth fleet;
  const auto start = std::chrono::steady_clock::now();
  const std::vector<RemoteResult> results = run_matrix_sharded(
      {live.path(), hung_ep.path}, jobs, options, &fleet);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  ::close(hung_fd);
  ::unlink(hung_ep.path.c_str());

  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].message;
    const sim::MatrixResult local = sim::run_job(jobs[i]);
    EXPECT_EQ(results[i].csv, sim::sweep_csv_row(local)) << i;
  }
  EXPECT_GE(fleet.node_deaths, 1u);
  EXPECT_GE(fleet.request_timeouts, 1u);
  EXPECT_EQ(fleet.points_lost, 0u);
  // The hang was detected by deadline, not waited out: well under the 60 s
  // a single unbounded result-wait would burn.
  EXPECT_LT(elapsed_ms, 30'000.0);
}

TEST(Sharded, ChaosClosedConnectionsHealByReconnect) {
  // Aggressive connection-killing chaos against ONE healthy daemon: every
  // close is a node death, every probe an instant resurrection (the daemon
  // itself never dies). The sweep must converge with zero lost points —
  // the reconnect/re-dispatch loop healing each injected failure.
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  const std::vector<sim::MatrixJob> jobs = two_node_grid();

  ShardOptions options = fast_options();
  options.retry_budget = 100;  // chaos this hot needs headroom
  options.chaos = parse_chaos("close=0.4,seed=11");
  FleetHealth fleet;
  const std::vector<RemoteResult> results =
      run_matrix_sharded({live.path()}, jobs, options, &fleet);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << i << ": " << results[i].message;
    const sim::MatrixResult local = sim::run_job(jobs[i]);
    EXPECT_EQ(results[i].csv, sim::sweep_csv_row(local)) << i;
  }
  EXPECT_EQ(fleet.points_lost, 0u);
  EXPECT_GT(fleet.chaos_injected, 0u);
  EXPECT_GE(fleet.node_deaths, 1u);
  EXPECT_GE(fleet.reconnects, 1u);
}

TEST(Sharded, RetryBudgetExhaustionIsATypedRow) {
  // Budget 0: the first node loss a point suffers is its last. With
  // connection-killing chaos, some points must exhaust the budget and the
  // error row must say so.
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  const std::vector<sim::MatrixJob> jobs = two_node_grid();

  ShardOptions options = fast_options();
  options.retry_budget = 0;
  options.chaos = parse_chaos("close=0.5,seed=3");
  FleetHealth fleet;
  const std::vector<RemoteResult> results =
      run_matrix_sharded({live.path()}, jobs, options, &fleet);
  ASSERT_EQ(results.size(), jobs.size());
  std::size_t exhausted = 0;
  for (const RemoteResult& r : results) {
    if (r.error.empty()) continue;
    EXPECT_EQ(r.error, kErrNodeLost);
    EXPECT_NE(r.message.find("retry budget (0) exhausted"),
              std::string::npos);
    ++exhausted;
  }
  EXPECT_GT(exhausted, 0u);
  EXPECT_EQ(fleet.points_lost, exhausted);
}

// ---- snapshot/restore verbs (protocol v2) ----------------------------------

TEST(Service, SnapshotRestoreRoundTripMatchesUninterruptedRun) {
  LiveServer live(ServeConfig{"", "", /*threads=*/2, /*queue_limit=*/8});
  Client client;
  client.connect(live.path());

  const JobSpec spec = small_job("count");
  // Capture: the run finishes normally AND parks a warm blob server-side.
  const Response snap = client.snapshot(spec, /*cycle=*/1);
  ASSERT_TRUE(snap.ok) << snap.message;
  EXPECT_EQ(snap.type, "snapshot");
  EXPECT_TRUE(snap.doc.find("captured")->boolean);
  EXPECT_GE(snap.doc.u64_at("cycle"), 1u);
  EXPECT_GT(snap.doc.u64_at("blob_bytes"), 0u);
  EXPECT_TRUE(snap.doc.find("run_ok")->boolean);

  // Restore-and-finish: byte-identical to an uninterrupted local run.
  const Response restored = client.restore(spec, /*cycle=*/1);
  ASSERT_TRUE(restored.ok) << restored.message;
  EXPECT_EQ(restored.type, "restored");
  EXPECT_TRUE(restored.doc.find("run_ok")->boolean);
  const sim::MatrixResult local = sim::run_job(spec.job);
  EXPECT_EQ(restored.doc.str_at("csv"), sim::sweep_csv_row(local));
  EXPECT_EQ(restored.doc.str_at("stats"), sim::stats_json_run(local));
  EXPECT_EQ(snap.doc.str_at("csv"), sim::sweep_csv_row(local));

  // The cache counters are observable through status.
  const Response status = client.server_status();
  ASSERT_TRUE(status.ok);
  const trace::JsonValue* snapshots = status.doc.find("snapshots");
  ASSERT_NE(snapshots, nullptr);
  EXPECT_EQ(snapshots->u64_at("entries"), 1u);
  EXPECT_EQ(snapshots->u64_at("hits"), 1u);
}

TEST(Service, RestoreWithoutASnapshotIsTyped) {
  LiveServer live(ServeConfig{"", "", /*threads=*/1, /*queue_limit=*/4});
  Client client;
  client.connect(live.path());
  const Response miss = client.restore(small_job("count"), /*cycle=*/1);
  EXPECT_FALSE(miss.ok);
  EXPECT_EQ(miss.error, kErrNoSuchSnapshot);
  // Different cycle, arch, or preparation identity = a different key.
  ASSERT_TRUE(client.snapshot(small_job("count"), 1).ok);
  EXPECT_FALSE(client.restore(small_job("count"), 2).ok);
  EXPECT_FALSE(
      client.restore(small_job("count", arch::ArchKind::kSsmc), 1).ok);
  EXPECT_FALSE(client.restore(small_job("sample"), 1).ok);
  EXPECT_TRUE(client.restore(small_job("count"), 1).ok);
}

TEST(Service, SnapshotVerbsRejectOldClients) {
  // The verbs demand "protocol_version":2 — a v1 client replaying frames
  // without the declaration gets the typed version-mismatch, and a
  // malformed body is still bad-request.
  LiveServer live(ServeConfig{"", "", /*threads=*/1, /*queue_limit=*/4});
  Client client;
  client.connect(live.path());

  const Response pong = client.ping();
  ASSERT_TRUE(pong.ok);
  EXPECT_EQ(pong.doc.u64_at("protocol_version"), 2u);

  for (const char* verb : {"snapshot", "restore"}) {
    const Response unversioned = client.roundtrip(
        std::string(R"({"type":")") + verb +
        R"(","cycle":1,"job":{"bench":"count"}})");
    EXPECT_FALSE(unversioned.ok);
    EXPECT_EQ(unversioned.error, kErrVersionMismatch) << verb;
    const Response stale = client.roundtrip(
        std::string(R"({"type":")") + verb +
        R"(","protocol_version":1,"cycle":1,"job":{"bench":"count"}})");
    EXPECT_FALSE(stale.ok);
    EXPECT_EQ(stale.error, kErrVersionMismatch) << verb;
  }
  // Version right, body wrong: cycle 0 and traced jobs are bad requests.
  const Response no_cycle = client.roundtrip(
      R"({"type":"snapshot","protocol_version":2,"cycle":0,)"
      R"("job":{"bench":"count"}})");
  EXPECT_FALSE(no_cycle.ok);
  EXPECT_EQ(no_cycle.error, kErrBadRequest);
  const Response traced = client.roundtrip(
      R"({"type":"snapshot","protocol_version":2,"cycle":1,)"
      R"("job":{"bench":"count","trace":true}})");
  EXPECT_FALSE(traced.ok);
  EXPECT_EQ(traced.error, kErrBadRequest);
}

TEST(Service, PerJobErrorsTravelInTheResult) {
  LiveServer live(ServeConfig{"", "", /*threads=*/1, /*queue_limit=*/4});
  Client client;
  client.connect(live.path());

  // A watchdog-doomed config: valid to ADMIT, fails to RUN. The failure
  // must come back as run_ok=false with the error in the CSV row, exactly
  // like the local harness, not as a protocol error.
  JobSpec doomed = small_job("count");
  doomed.job.options.cfg.watchdog.max_cycles = 10;  // trips immediately
  const Response sub = client.submit(doomed);
  ASSERT_TRUE(sub.ok) << sub.message;
  const Response result = client.result(sub.doc.u64_at("id"), true);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_FALSE(result.doc.find("run_ok")->boolean);
  EXPECT_NE(result.doc.str_at("csv").find("watchdog"), std::string::npos);
}

TEST(Service, BoundedResultWaitHeartbeatsInsteadOfHanging) {
  // result(id, wait, wait_ms): a long job must NOT hold the reply hostage —
  // the bounded wait expires into a typed job-running/job-pending heartbeat
  // the client can keep re-issuing, which is how the sweep distinguishes a
  // slow node from a dead one.
  LiveServer live(ServeConfig{"", "", /*threads=*/1, /*queue_limit=*/4});
  Client client;
  client.connect(live.path());

  JobSpec held = small_job("count");
  held.hold_ms = 2000;
  const Response sub = client.submit(held);
  ASSERT_TRUE(sub.ok) << sub.message;
  const u64 id = sub.doc.u64_at("id");

  const auto start = std::chrono::steady_clock::now();
  const Response beat = client.result(id, /*wait=*/true, /*wait_ms=*/100);
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  EXPECT_FALSE(beat.ok);
  EXPECT_TRUE(beat.error == kErrJobRunning || beat.error == kErrJobPending)
      << beat.error;
  EXPECT_LT(waited_ms, 1500.0);  // expired at ~100 ms, not the 2 s hold

  // Re-issuing the bounded wait converges on the real result.
  ASSERT_TRUE(client.cancel(id).ok);
  const Response done = client.result(id, /*wait=*/true, /*wait_ms=*/5000);
  ASSERT_TRUE(done.ok) << done.message;
  EXPECT_EQ(done.doc.str_at("state"), "cancelled");
}

TEST(Service, JobTimeoutCapsWallClockAndTypesTheError) {
  // --job-timeout-ms clamps EVERY job's wall-clock watchdog server-side: a
  // runaway point dies with the typed job-timeout error in its result row
  // instead of pinning a worker forever. The client cannot opt out.
  ServeConfig cfg{"", "", /*threads=*/1, /*queue_limit=*/4};
  cfg.job_timeout_ms = 1;
  LiveServer live(cfg);
  Client client;
  client.connect(live.path());

  JobSpec runaway = small_job("count");
  runaway.job.options.records = u64{1} << 20;  // far more than 1 ms of work
  runaway.job.options.cfg.watchdog.wall_ms = 60'000;  // ignored: clamped down
  const Response sub = client.submit(runaway);
  ASSERT_TRUE(sub.ok) << sub.message;
  const Response result = client.result(sub.doc.u64_at("id"), true);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_FALSE(result.doc.find("run_ok")->boolean);
  EXPECT_NE(result.doc.str_at("csv").find("job-timeout"), std::string::npos);
  EXPECT_NE(result.doc.str_at("csv").find("wall-clock budget"),
            std::string::npos);
}

}  // namespace
}  // namespace mlp::serve
