// Assembler tests: syntax coverage, label resolution, pseudo-instruction
// expansion, error diagnostics, and disassembler round trips.

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"

namespace mlp::isa {
namespace {

Program ok(const std::string& src) { return must_assemble("test", src); }

std::string err(const std::string& src) {
  AsmResult result = assemble("test", src);
  EXPECT_FALSE(result.ok);
  return result.error;
}

TEST(Assembler, MinimalProgram) {
  Program p = ok("halt\n");
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.at(0).op, Opcode::kHalt);
}

TEST(Assembler, CommentsAndBlankLines) {
  Program p = ok(R"(
    ; full-line comment
    # another comment style
    addi r1, r0, 5   ; trailing comment
    halt             # trailing comment
  )");
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0).imm, 5);
}

TEST(Assembler, AllRFormatOps) {
  Program p = ok(R"(
    add r1, r2, r3
    sub r4, r5, r6
    mul r7, r8, r9
    div r1, r2, r3
    rem r1, r2, r3
    and r1, r2, r3
    or  r1, r2, r3
    xor r1, r2, r3
    sll r1, r2, r3
    srl r1, r2, r3
    sra r1, r2, r3
    slt r1, r2, r3
    sltu r1, r2, r3
    fadd r1, r2, r3
    fmul r1, r2, r3
    fdiv r1, r2, r3
    flt r1, r2, r3
    halt
  )");
  EXPECT_EQ(p.size(), 18u);
  EXPECT_EQ(p.at(0).op, Opcode::kAdd);
  EXPECT_EQ(p.at(13).op, Opcode::kFadd);
}

TEST(Assembler, MemoryOperands) {
  Program p = ok(R"(
    lw   r1, 8(r2)
    lw   r1, (r2)
    sw   r3, -4(r4)
    lw.l r5, 0x10(r6)
    sw.l r7, 0(r8)
    amoadd.l  r1, r2, 0(r3)
    famoadd.l r4, r5, 4(r6)
    halt
  )");
  EXPECT_EQ(p.at(0).imm, 8);
  EXPECT_EQ(p.at(1).imm, 0);
  EXPECT_EQ(p.at(2).imm, -4);
  EXPECT_EQ(p.at(3).imm, 16);
  EXPECT_EQ(p.at(5).op, Opcode::kAmoaddl);
  EXPECT_EQ(p.at(5).rd, 1);
  EXPECT_EQ(p.at(5).rs2, 2);
  EXPECT_EQ(p.at(5).rs1, 3);
  EXPECT_EQ(p.at(6).op, Opcode::kFamoaddl);
  EXPECT_EQ(p.at(6).imm, 4);
}

TEST(Assembler, LabelsForwardAndBackward) {
  Program p = ok(R"(
top:
    addi r1, r1, 1
    blt  r1, r2, top
    beq  r1, r2, end
    addi r3, r3, 1
end:
    halt
  )");
  EXPECT_EQ(p.label("top"), 0u);
  EXPECT_EQ(p.label("end"), 4u);
  EXPECT_EQ(p.at(1).imm, -1);  // back to pc 0 from pc 1
  EXPECT_EQ(p.at(2).imm, 2);   // forward to pc 4 from pc 2
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  Program p = ok("start: addi r1, r0, 1\n j start\n halt\n");
  EXPECT_EQ(p.label("start"), 0u);
  EXPECT_EQ(p.at(1).op, Opcode::kJal);
  EXPECT_EQ(p.at(1).imm, -1);
}

TEST(Assembler, PseudoInstructions) {
  Program p = ok(R"(
    nop
    mv r2, r3
    j  skip
    li r4, 100
skip:
    li r5, 0x7fffffff
    ble r1, r2, skip
    bgt r1, r2, skip
    halt
  )");
  EXPECT_EQ(p.at(0).op, Opcode::kAddi);  // nop
  EXPECT_EQ(p.at(1).op, Opcode::kAddi);  // mv
  EXPECT_EQ(p.at(1).rs1, 3);
  EXPECT_EQ(p.at(3).op, Opcode::kAddi);  // small li
  EXPECT_EQ(p.at(3).imm, 100);
  EXPECT_EQ(p.label("skip"), 4u);
  EXPECT_EQ(p.at(4).op, Opcode::kLui);   // large li
  EXPECT_EQ(p.at(5).op, Opcode::kOri);
  // ble r1,r2 -> bge r2,r1 ; bgt r1,r2 -> blt r2,r1
  EXPECT_EQ(p.at(6).op, Opcode::kBge);
  EXPECT_EQ(p.at(6).rs1, 2);
  EXPECT_EQ(p.at(6).rs2, 1);
  EXPECT_EQ(p.at(7).op, Opcode::kBlt);
}

TEST(Assembler, LiFloat) {
  Program p = ok("li.f r1, 1.5\n halt\n");
  // 1.5f == 0x3fc00000: needs lui+ori.
  const u32 bits = (static_cast<u32>(p.at(0).imm) << 13) |
                   static_cast<u32>(p.at(1).op == Opcode::kOri ? p.at(1).imm : 0);
  EXPECT_EQ(bits, 0x3fc00000u);
}

TEST(Assembler, CsrNames) {
  Program p = ok(R"(
    csrr r1, TID
    csrr r2, NTHREADS
    csrr r3, IDX_BASE
    csrr r4, ARG3
    csrr r5, INPUT_BASE
    halt
  )");
  EXPECT_EQ(p.at(0).imm, static_cast<i32>(Csr::kTid));
  EXPECT_EQ(p.at(3).imm, static_cast<i32>(Csr::kArg3));
  EXPECT_EQ(p.at(4).imm, static_cast<i32>(Csr::kInputBase));
}

TEST(Assembler, NumericBranchOffsets) {
  Program p = ok("beq r1, r2, 2\n nop\n halt\n");
  EXPECT_EQ(p.at(0).imm, 2);
}

// --- Error diagnostics ---

TEST(AssemblerErrors, UnknownMnemonic) {
  EXPECT_NE(err("frobnicate r1, r2\n"), "");
  EXPECT_NE(err("frobnicate r1, r2\n").find("line 1"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedLabel) {
  EXPECT_NE(err("beq r1, r2, nowhere\n halt\n").find("undefined label"),
            std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_NE(err("a:\n nop\na:\n halt\n").find("duplicate label"),
            std::string::npos);
}

TEST(AssemblerErrors, BadRegister) {
  EXPECT_NE(err("add r1, r2, r32\n"), "");
  EXPECT_NE(err("add r1, x2, r3\n"), "");
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_NE(err("add r1, r2\n").find("expects 3"), std::string::npos);
  EXPECT_NE(err("halt r1\n").find("expects 0"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  EXPECT_NE(err("addi r1, r2, 100000\n").find("immediate out of range"),
            std::string::npos);
  EXPECT_NE(err("amoadd.l r1, r2, 4096(r3)\n").find("out of range"),
            std::string::npos);
}

TEST(AssemblerErrors, UnknownCsr) {
  EXPECT_NE(err("csrr r1, BOGUS\n").find("unknown CSR"), std::string::npos);
}

TEST(AssemblerErrors, EmptyProgram) {
  EXPECT_NE(err("; nothing\n").find("no instructions"), std::string::npos);
}

// --- Round trip: assemble -> disassemble -> assemble yields same binary ---

TEST(Assembler, DisassemblyRoundTrip) {
  Program p1 = ok(R"(
    csrr r1, TID
    csrr r2, NTHREADS
loop:
    lw   r3, 0(r4)
    amoadd.l r5, r3, 0(r6)
    addi r4, r4, 4
    blt  r4, r7, loop
    halt
  )");
  // Disassemble (labels become raw offsets) and reassemble.
  std::string listing;
  for (u32 pc = 0; pc < p1.size(); ++pc)
    listing += disassemble(p1.at(pc)) + "\n";
  Program p2 = ok(listing);
  ASSERT_EQ(p1.size(), p2.size());
  for (u32 pc = 0; pc < p1.size(); ++pc)
    EXPECT_EQ(encode(p1.at(pc)), encode(p2.at(pc))) << "pc " << pc;
}

}  // namespace
}  // namespace mlp::isa
