// Energy model tests: unit conversions, component attribution, and the
// relational properties Fig. 4's conclusions depend on (off-chip >> stacked
// per bit; shared-memory crossbar > scratchpad; SIMT fetch amortization;
// idle dynamic under divergence).

#include <gtest/gtest.h>

#include "energy/energy.hpp"

namespace mlp::energy {
namespace {

TEST(EnergyModel, DramTransferEnergyScalesWithBytes) {
  EnergyModel model;
  const double one_kb = model.dram_j(1024, 0);
  const double two_kb = model.dram_j(2048, 0);
  EXPECT_DOUBLE_EQ(two_kb, 2.0 * one_kb);
  // 6 pJ/bit: 1 KiB = 8192 bits = 49.152 nJ.
  EXPECT_NEAR(one_kb, 8192 * 6e-12, 1e-12);
}

TEST(EnergyModel, ActivationEnergyPerRowActivate) {
  EnergyModel model;
  EXPECT_NEAR(model.dram_j(0, 10), 10 * 15e-9, 1e-12);
}

TEST(EnergyModel, OffchipBitCostsTenXStacked) {
  EnergyModel model;
  const double stacked = model.dram_j(4096, 0, /*offchip=*/false);
  const double offchip = model.dram_j(4096, 0, /*offchip=*/true);
  EXPECT_NEAR(offchip / stacked, 70.0 / 6.0, 1e-9);
}

core::ExecStats make_exec(u64 instructions, u64 floats, u64 locals,
                          u64 loads, u64 idle) {
  core::ExecStats stats;
  stats.instructions.inc(instructions);
  stats.float_alu.inc(floats);
  stats.local_ops.inc(locals);
  stats.global_loads.inc(loads);
  stats.idle_cycles.inc(idle);
  return stats;
}

TEST(EnergyModel, MimdFloatOpsCostMoreThanInt) {
  EnergyModel model;
  const double int_only = model.mimd_core_j(
      make_exec(1000, 0, 0, 0, 0), false, false);
  const double float_heavy = model.mimd_core_j(
      make_exec(1000, 1000, 0, 0, 0), false, false);
  EXPECT_GT(float_heavy, int_only);
}

TEST(EnergyModel, SsmcStateViaCacheCostsMoreThanScratchpad) {
  EnergyModel model;
  const auto stats = make_exec(1000, 0, 500, 100, 0);
  const double millipede_like = model.mimd_core_j(stats, false, false);
  const double ssmc_like = model.mimd_core_j(stats, true, true);
  EXPECT_GT(ssmc_like, millipede_like)
      << "5 KB L1D access must cost more than scratchpad + PB slice";
}

TEST(EnergyModel, IdleCyclesCostFractionOfActive) {
  EnergyModel model;
  const double active = model.mimd_core_j(make_exec(1000, 0, 0, 0, 0),
                                          false, false);
  const double with_idle = model.mimd_core_j(make_exec(1000, 0, 0, 0, 1000),
                                             false, false);
  const double idle_cost = with_idle - active;
  EXPECT_GT(idle_cost, 0.0);
  EXPECT_LT(idle_cost, active) << "imperfect gating, not full power";
}

gpgpu::SmStats make_sm(u64 warps, u64 threads, u64 shared, u64 lines,
                       u64 inactive) {
  gpgpu::SmStats stats;
  stats.warp_instructions.inc(warps);
  stats.thread_instructions.inc(threads);
  stats.thread_local_accesses.inc(shared);
  stats.global_lines.inc(lines);
  stats.inactive_lane_slots.inc(inactive);
  return stats;
}

TEST(EnergyModel, GpgpuAmortizesFetchAcrossWideWarps) {
  EnergyModel model;
  // Same thread work, full warps vs degenerate 1-thread warps.
  const double wide = model.gpgpu_core_j(make_sm(1000, 32000, 0, 0, 0));
  const double narrow = model.gpgpu_core_j(make_sm(32000, 32000, 0, 0, 0));
  EXPECT_LT(wide, narrow) << "one fetch per warp instruction";
}

TEST(EnergyModel, SharedMemoryCrossbarIsExpensive) {
  EnergyModel model;
  const double base = model.gpgpu_core_j(make_sm(100, 3200, 0, 0, 0));
  const double with_shared = model.gpgpu_core_j(make_sm(100, 3200, 3200, 0, 0));
  // Per-access shared-memory energy must exceed the MIMD scratchpad's.
  EXPECT_GT((with_shared - base) / 3200, model.params().pj_local_access * 1e-12);
}

TEST(EnergyModel, DivergenceInactiveLanesBurnIdleEnergy) {
  EnergyModel model;
  const double converged = model.gpgpu_core_j(make_sm(1000, 32000, 0, 0, 0));
  const double divergent =
      model.gpgpu_core_j(make_sm(2000, 32000, 0, 0, 32000));
  EXPECT_GT(divergent, converged);
}

TEST(EnergyModel, LeakageScalesWithTimeAndSram) {
  EnergyModel model;
  EXPECT_DOUBLE_EQ(model.leakage_j(32, 288.0, 2.0),
                   2.0 * model.leakage_j(32, 288.0, 1.0));
  EXPECT_GT(model.leakage_j(32, 288.0, 1.0), model.leakage_j(32, 164.0, 1.0));
  EXPECT_GT(model.leakage_j(8, 100.0, 1.0, /*ooo=*/true),
            model.leakage_j(8, 100.0, 1.0, /*ooo=*/false))
      << "OoO cores leak far more than simple cores";
}

TEST(EnergyModel, MulticorePerInstructionCostDominates) {
  EnergyModel model;
  const double j = model.multicore_core_j(1000, 0, 0, 0);
  EXPECT_NEAR(j, 1000 * model.params().pj_ooo_op * 1e-12, 1e-15);
  EXPECT_GT(model.params().pj_ooo_op, 4 * model.params().pj_int_op)
      << "wide OoO pipelines cost several times a simple core per inst";
}

TEST(EnergyBreakdownTest, TotalsSum) {
  EnergyBreakdown b;
  b.core_j = 1.0;
  b.dram_j = 2.0;
  b.leak_j = 3.0;
  EXPECT_DOUBLE_EQ(b.total_j(), 6.0);
}

}  // namespace
}  // namespace mlp::energy
