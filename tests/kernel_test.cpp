// Simulation-kernel invariants: bulk clock advancement, watchdog skip
// accounting, and — the load-bearing property — that idle-cycle
// fast-forward is invisible: every counter, metric, trace event and trace
// file byte must be identical to polling every edge
// (MachineConfig::fast_forward = false, --no-fast-forward).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "arch/system.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/watchdog.hpp"
#include "sim/kernel.hpp"
#include "sim/runner.hpp"
#include "trace/trace.hpp"

namespace mlp {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- clock ----

TEST(ClockDomain, AdvanceByMatchesRepeatedAdvance) {
  ClockDomain a(277);
  ClockDomain b(277);
  for (int i = 0; i < 5; ++i) a.advance();
  b.advance_by(5);
  EXPECT_EQ(a.ticks(), b.ticks());
  EXPECT_EQ(a.next_edge_ps(), b.next_edge_ps());

  // A retune applies from the next edge in both paths.
  a.set_period_ps(500);
  b.set_period_ps(500);
  for (int i = 0; i < 3; ++i) a.advance();
  b.advance_by(3);
  EXPECT_EQ(a.ticks(), b.ticks());
  EXPECT_EQ(a.next_edge_ps(), b.next_edge_ps());

  b.advance_by(0);
  EXPECT_EQ(a.ticks(), b.ticks());
}

// ------------------------------------------------------------- watchdog ----

u64 iterations_at_trip(Watchdog* dog, u64 signature) {
  for (;;) {
    try {
      dog->step(signature);
    } catch (const SimError&) {
      return dog->iterations();
    }
  }
}

TEST(WatchdogSkip, MatchesConsecutiveSteps) {
  WatchdogConfig cfg;
  cfg.stall_cycles = 100;
  cfg.max_cycles = 0;
  Watchdog stepped(cfg, "test", {});
  Watchdog skipped(cfg, "test", {});

  for (int i = 0; i < 50; ++i) stepped.step(7);
  skipped.skip(50, 7);
  EXPECT_EQ(stepped.iterations(), skipped.iterations());
  EXPECT_EQ(stepped.steps_until_trip(7), skipped.steps_until_trip(7));

  // Fed the same flat signature onward, both trip at the same iteration.
  EXPECT_EQ(iterations_at_trip(&stepped, 7), iterations_at_trip(&skipped, 7));
}

TEST(WatchdogSkip, StallBoundaryTripsOnTheNextRealStep) {
  WatchdogConfig cfg;
  cfg.stall_cycles = 100;
  cfg.max_cycles = 0;
  Watchdog dog(cfg, "test", {});
  const u64 until = dog.steps_until_trip(7);
  // The kernel only ever skips strictly fewer than steps_until_trip edges;
  // after that the very next real step must trip.
  dog.skip(until - 1, 7);
  EXPECT_THROW(dog.step(7), SimError);
}

TEST(WatchdogSkip, CeilingBoundaryTripsOnTheNextRealStep) {
  WatchdogConfig cfg;
  cfg.stall_cycles = 0;
  cfg.max_cycles = 70;
  Watchdog dog(cfg, "test", {});
  dog.skip(dog.steps_until_trip(1) - 1, 1);
  EXPECT_THROW(dog.step(2), SimError);  // ceiling ignores progress
}

TEST(WatchdogSkip, DisabledLimitsNeverTrip) {
  WatchdogConfig cfg;
  cfg.stall_cycles = 0;
  cfg.max_cycles = 0;
  Watchdog dog(cfg, "test", {});
  EXPECT_EQ(dog.steps_until_trip(1), ~u64{0});
  dog.skip(1u << 20, 1);
  dog.step(1);
  EXPECT_EQ(dog.iterations(), (1u << 20) + 1);
}

TEST(WatchdogWall, BudgetTripsWithTheJobTimeoutKind) {
  WatchdogConfig cfg;
  cfg.stall_cycles = 0;
  cfg.max_cycles = 0;
  cfg.wall_ms = 1;
  Watchdog dog(cfg, "test", {});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The amortized check samples the clock only every ~8192 iterations, so
  // the trip needs more than one stride of real steps past the deadline —
  // the progress signature keeps advancing (no stall, no ceiling).
  try {
    for (u64 i = 0; i < 100'000; ++i) dog.step(i);
    FAIL() << "wall-clock budget never tripped";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "job-timeout");
    EXPECT_NE(std::string(e.what()).find("wall-clock budget"),
              std::string::npos);
  }
}

TEST(WatchdogWall, SkippedIterationsStillReachTheCheck) {
  WatchdogConfig cfg;
  cfg.stall_cycles = 0;
  cfg.max_cycles = 0;
  cfg.wall_ms = 1;
  Watchdog dog(cfg, "test", {});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // A fast-forwarded run bulk-advances past the check stride; the very next
  // real step must still sample the clock and trip.
  dog.skip(1u << 20, 1);
  EXPECT_THROW(dog.step(2), SimError);
}

TEST(WatchdogWall, DisabledBudgetNeverSamplesTheClock) {
  WatchdogConfig cfg;
  cfg.stall_cycles = 0;
  cfg.max_cycles = 0;
  cfg.wall_ms = 0;
  Watchdog dog(cfg, "test", {});
  for (u64 i = 0; i < 20'000; ++i) dog.step(i);
  EXPECT_EQ(dog.iterations(), 20'000u);
}

// ----------------------------------------------------- kernel fake unit ----

/// Sleeps until `wake_at`, then retires one unit of work per tick. Its tick
/// is a provable no-op before wake_at, so a fast-forwarding kernel may skip
/// straight to it.
struct SleepyUnit final : sim::Tickable {
  Picos wake_at = 0;
  u64 remaining = 0;
  u64 ticks = 0;
  u64 idle_skipped = 0;
  u64 work = 0;

  void tick(Picos now, Picos /*period_ps*/) override {
    ++ticks;
    if (now >= wake_at && remaining > 0) {
      --remaining;
      ++work;
    }
  }
  Picos next_event(Picos now) const override {
    return remaining > 0 ? std::max(wake_at, now) : sim::kNoEvent;
  }
  void skip_idle(u64 edges) override { idle_skipped += edges; }
};

TEST(KernelFastForward, SkipsProvablyIdleEdges) {
  auto drive = [](bool fast_forward, SleepyUnit* unit) {
    MachineConfig cfg = MachineConfig::paper_defaults();
    cfg.fast_forward = fast_forward;
    unit->wake_at = 3'000'000;  // ~10k compute edges of provable idleness
    unit->remaining = 3;
    sim::SimulationKernel kernel(cfg, "test", nullptr);
    kernel.add_compute(unit);
    kernel.set_progress([unit] { return unit->work; });
    return kernel.run([unit] { return unit->remaining == 0; });
  };

  SleepyUnit polled, skipped;
  const Picos poll_end = drive(false, &polled);
  const Picos ff_end = drive(true, &skipped);

  // Identical outcome...
  EXPECT_EQ(poll_end, ff_end);
  EXPECT_EQ(polled.work, skipped.work);
  EXPECT_EQ(polled.idle_skipped, 0u);
  EXPECT_EQ(polled.ticks, skipped.ticks + skipped.idle_skipped);
  // ... and the fast-forwarded run actually skipped the idle gap instead of
  // polling its ~10k edges one by one.
  EXPECT_GT(skipped.idle_skipped, polled.ticks / 2);
  EXPECT_LT(skipped.ticks, polled.ticks / 4);
}

// ------------------------------------------ whole-system equivalence ----

sim::MatrixJob matrix_job(arch::ArchKind kind, const std::string& bench,
                          bool fast_forward) {
  sim::MatrixJob job;
  job.kind = kind;
  job.bench = bench;
  job.options.rows = 24;
  job.options.cfg.fast_forward = fast_forward;
  return job;
}

TEST(KernelFastForward, CountersMatchPollingAcrossTheMatrix) {
  for (const arch::ArchKind kind : arch::all_arch_kinds()) {
    for (const std::string bench : {"count", "variance", "kmeans"}) {
      const sim::MatrixResult poll =
          sim::run_job(matrix_job(kind, bench, false));
      const sim::MatrixResult ff = sim::run_job(matrix_job(kind, bench, true));
      ASSERT_TRUE(poll.ok()) << poll.error;
      ASSERT_TRUE(ff.ok()) << ff.error;
      const std::string label =
          std::string(arch::arch_name(kind)) + "/" + bench;
      EXPECT_EQ(poll.result.compute_cycles, ff.result.compute_cycles)
          << label;
      EXPECT_EQ(poll.result.runtime_ps, ff.result.runtime_ps) << label;
      EXPECT_EQ(poll.result.thread_instructions,
                ff.result.thread_instructions)
          << label;
      EXPECT_EQ(poll.result.final_clock_mhz, ff.result.final_clock_mhz)
          << label;
      EXPECT_EQ(poll.result.stats, ff.result.stats) << label;
    }
  }
}

TEST(KernelFastForward, CountersMatchPollingWithRefreshAndHierarchy) {
  // Fast-forward must not skip over refresh cursors, row idle-close
  // deadlines, or striped sub-transfers: with every DRAM feature lit the
  // skip-idle run still lands counter-identical to 1-cycle polling. The
  // arch x bench subset keeps the runtime small; the features live in the
  // shared controller, not the arch frontends.
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kGpgpu}) {
    for (const std::string bench : {"count", "kmeans"}) {
      auto dram_job = [&](bool fast_forward) {
        sim::MatrixJob job = matrix_job(kind, bench, fast_forward);
        job.options.cfg.dram.channels = 2;
        job.options.cfg.dram.ranks = 2;
        job.options.cfg.dram.mapping = "row:rank:bank:channel:col";
        job.options.cfg.dram.page_policy = "open:idle=64:hits=8";
        job.options.cfg.dram.refresh = "on:trefi=40:trfc=8:postpone=4";
        return job;
      };
      const sim::MatrixResult poll = sim::run_job(dram_job(false));
      const sim::MatrixResult ff = sim::run_job(dram_job(true));
      ASSERT_TRUE(poll.ok()) << poll.error;
      ASSERT_TRUE(ff.ok()) << ff.error;
      const std::string label =
          std::string(arch::arch_name(kind)) + "/" + bench;
      EXPECT_GT(poll.result.stats.at("dram.refreshes"), 0u) << label;
      EXPECT_EQ(poll.result.runtime_ps, ff.result.runtime_ps) << label;
      EXPECT_EQ(poll.result.stats, ff.result.stats) << label;
    }
  }
}

TEST(KernelFastForward, MillipedeFreqStepsMatchPolling) {
  workloads::WorkloadParams params;
  // 192 rows of 1-word records: enough voting rows for the DFS hill-climber
  // to retune several times (and partially climb back).
  params.num_records = 98304;
  const workloads::Workload workload = workloads::make_bmla("count", params);

  auto freq_steps = [&](bool fast_forward, double* final_mhz) {
    MachineConfig cfg = MachineConfig::paper_defaults();
    cfg.fast_forward = fast_forward;
    trace::TraceConfig tc;
    tc.chrome_json = true;  // capture events in memory; nothing is written
    trace::TraceSession session(tc);
    const arch::RunResult r =
        run_arch(arch::ArchKind::kMillipede, cfg, workload, 1, &session);
    *final_mhz = r.final_clock_mhz;
    std::vector<std::tuple<Picos, u64, u64>> steps;
    for (const trace::Event& e : session.events()) {
      if (e.kind == trace::EventKind::kFreqStep) {
        steps.emplace_back(e.ts, e.a, e.b);
      }
    }
    return steps;
  };

  double poll_mhz = 0, ff_mhz = 0;
  const auto poll_steps = freq_steps(false, &poll_mhz);
  const auto ff_steps = freq_steps(true, &ff_mhz);
  // The DFS rate matcher retunes mid-run on this workload: the sequence of
  // retune events — timestamps, periods, frequencies — must be identical
  // whether or not the kernel fast-forwarded the gaps between them.
  EXPECT_FALSE(poll_steps.empty());
  EXPECT_EQ(poll_steps, ff_steps);
  EXPECT_EQ(poll_mhz, ff_mhz);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(KernelFastForward, TraceFilesAreByteIdenticalToPolling) {
  const fs::path root = fs::path(::testing::TempDir()) / "mlp_kernel_ff";
  fs::remove_all(root);
  auto traced = [&](bool fast_forward) {
    sim::MatrixJob job =
        matrix_job(arch::ArchKind::kMillipede, "variance", fast_forward);
    job.options.trace.chrome_json = true;
    job.options.trace.interval_cycles = 256;
    job.options.trace.dir =
        (root / (fast_forward ? "ff" : "poll")).string();
    const sim::MatrixResult r = sim::run_job(job);
    EXPECT_TRUE(r.ok()) << r.error;
    std::vector<std::string> files = r.trace_files;
    std::sort(files.begin(), files.end());
    return files;
  };

  const std::vector<std::string> poll_files = traced(false);
  const std::vector<std::string> ff_files = traced(true);
  ASSERT_EQ(poll_files.size(), ff_files.size());
  ASSERT_FALSE(poll_files.empty());
  for (std::size_t i = 0; i < poll_files.size(); ++i) {
    EXPECT_EQ(fs::path(poll_files[i]).filename(),
              fs::path(ff_files[i]).filename());
    EXPECT_EQ(read_file(poll_files[i]), read_file(ff_files[i]))
        << poll_files[i];
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace mlp
