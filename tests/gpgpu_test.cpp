// SIMT stack semantics and SM timing behaviour (divergence serialization,
// shared-memory conflicts, coalescing, multithreaded completion).

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "gpgpu/sm.hpp"
#include "isa/assembler.hpp"
#include "mem/channels.hpp"

namespace mlp::gpgpu {
namespace {

// --- SimtStack ---

TEST(SimtStack, StartsFullyActive) {
  SimtStack stack(4);
  EXPECT_EQ(stack.pc(), 0u);
  EXPECT_EQ(stack.active_mask(), 0xfu);
  EXPECT_FALSE(stack.all_halted());
}

TEST(SimtStack, UniformBranchNoDivergence) {
  SimtStack stack(4);
  EXPECT_FALSE(stack.branch(/*taken=*/0xf, /*target=*/10, /*fall=*/1,
                            /*reconv=*/20));
  EXPECT_EQ(stack.pc(), 10u);
  EXPECT_EQ(stack.active_mask(), 0xfu);
  EXPECT_EQ(stack.depth(), 1u);
}

TEST(SimtStack, DivergentBranchSplitsAndReconverges) {
  SimtStack stack(4);
  // Lanes 0,1 take to pc 10; lanes 2,3 fall through to pc 1; join at pc 20.
  EXPECT_TRUE(stack.branch(0x3, 10, 1, 20));
  EXPECT_EQ(stack.pc(), 10u);            // taken arm first
  EXPECT_EQ(stack.active_mask(), 0x3u);
  // Taken arm runs to the join.
  stack.advance(11);
  stack.advance(20);                      // reaches rpc: pops
  EXPECT_EQ(stack.pc(), 1u);             // fall-through arm
  EXPECT_EQ(stack.active_mask(), 0xcu);
  stack.advance(20);                      // fall arm reaches rpc
  EXPECT_EQ(stack.pc(), 20u);            // reconvergence placeholder
  EXPECT_EQ(stack.active_mask(), 0xfu);  // all lanes re-merged
  EXPECT_EQ(stack.depth(), 1u);
}

TEST(SimtStack, NestedDivergence) {
  SimtStack stack(4);
  stack.branch(0x3, 10, 1, 20);  // outer: {0,1} at 10, {2,3} at 1
  // Inner divergence within the taken arm: lane 0 to 15, lane 1 falls to 11,
  // join 18.
  EXPECT_TRUE(stack.branch(0x1, 15, 11, 18));
  EXPECT_EQ(stack.pc(), 15u);
  EXPECT_EQ(stack.active_mask(), 0x1u);
  stack.advance(18);  // inner taken joins
  EXPECT_EQ(stack.pc(), 11u);
  EXPECT_EQ(stack.active_mask(), 0x2u);
  stack.advance(18);  // inner fall joins -> inner placeholder at 18
  EXPECT_EQ(stack.pc(), 18u);
  EXPECT_EQ(stack.active_mask(), 0x3u);
  stack.advance(20);  // outer taken arm reaches outer join
  EXPECT_EQ(stack.pc(), 1u);
  EXPECT_EQ(stack.active_mask(), 0xcu);
}

TEST(SimtStack, HaltedLanesLeaveStack) {
  SimtStack stack(4);
  stack.branch(0x3, 10, 1, SimtStack::kNoReconv);
  EXPECT_EQ(stack.active_mask(), 0x3u);
  stack.halt_lanes(0x3);  // taken lanes halt
  EXPECT_EQ(stack.pc(), 1u);
  EXPECT_EQ(stack.active_mask(), 0xcu);
  stack.halt_lanes(0xc);
  EXPECT_TRUE(stack.all_halted());
}

TEST(SimtStack, BranchArmStartingAtJoinPopsImmediately) {
  SimtStack stack(4);
  // Empty then-arm: target == reconv.
  stack.branch(0x5, /*target=*/7, /*fall=*/1, /*reconv=*/7);
  EXPECT_EQ(stack.pc(), 1u);  // fall arm executes first
  EXPECT_EQ(stack.active_mask(), 0xau);
}

// --- SM integration ---

struct SmFixture : ::testing::Test {
  void make(const std::string& src, u32 warp_width = 4,
            bool row_oriented = false) {
    // Reset state so a test can build the SM more than once.
    sm.reset();
    pb.reset();
    lane_state.clear();
    stats = StatSet();
    sm_stats = SmStats();
    cfg = MachineConfig::paper_defaults();
    cfg.core.cores = 8;       // 8 lanes for testability
    cfg.gpgpu.warp_width = warp_width;
    cfg.dram.row_bytes = 512;  // 64 B slabs for 8 lanes
    cfg.validate();

    program = isa::must_assemble("sm", src);
    dram = std::make_unique<mem::DramImage>(1 << 20);
    ctrl = std::make_unique<mem::ChannelDemux>(cfg.dram, "dram", &stats);
    backend = std::make_unique<mem::ControllerBackend>(ctrl.get());
    l1d = std::make_unique<mem::Cache>(
        "l1d", cfg.gpgpu.l1d_bytes, cfg.gpgpu.line_bytes, cfg.gpgpu.l1d_assoc,
        cfg.gpgpu.mshrs,
        static_cast<Picos>(cfg.gpgpu.l1_hit_latency) * cfg.core.period_ps(),
        backend.get(), &stats);
    prefetcher = std::make_unique<mem::SequentialPrefetcher>(
        cfg.gpgpu.line_bytes, cfg.gpgpu.prefetch_degree,
        cfg.gpgpu.prefetch_distance);
    banking = std::make_unique<mem::SharedMemBanking>(
        cfg.gpgpu.shared_banks, mem::BankMapping::kLanePrivate);
    for (u32 i = 0; i < cfg.core.cores; ++i) {
      lane_state.emplace_back(cfg.core.local_mem_bytes);
    }
    if (row_oriented) {
      millipede::RowPlan plan;
      plan.first_row = 0;
      plan.num_rows = 16;
      plan.expected_mask = [](u64, u32) -> u64 { return 0xffff; };
      pb = std::make_unique<millipede::PrefetchBuffer>(cfg, plan, ctrl.get(),
                                                       nullptr, &stats, "pb");
    }
    sm_stats.register_with(&stats, "sm");
    StreamingMultiprocessor::Deps deps;
    deps.program = &program;
    deps.lane_state = &lane_state;
    deps.dram = dram.get();
    deps.l1d = row_oriented ? nullptr : l1d.get();
    deps.prefetcher = row_oriented ? nullptr : prefetcher.get();
    deps.pb = row_oriented ? pb.get() : nullptr;
    deps.banking = banking.get();
    deps.stats = &sm_stats;
    sm = std::make_unique<StreamingMultiprocessor>(cfg, warp_width, deps);
    if (pb) pb->prime(0);
  }

  /// Two-domain run loop until the SM halts; returns compute cycles.
  u64 run(u64 limit = 1000000) {
    ClockDomain compute(cfg.core.period_ps());
    ClockDomain channel(cfg.dram.period_ps());
    u64 cycles = 0;
    while (!sm->halted()) {
      MLP_CHECK(cycles < limit, "SM did not halt");
      if (compute.next_edge_ps() <= channel.next_edge_ps()) {
        const Picos now = compute.next_edge_ps();
        sm->tick(now, compute.period_ps());
        compute.advance();
        ++cycles;
      } else {
        const Picos now = channel.next_edge_ps();
        if (pb) pb->pump(now);
        l1d->pump(now);
        ctrl->tick(now);
        channel.advance();
      }
    }
    return cycles;
  }

  MachineConfig cfg;
  StatSet stats;
  isa::Program program;
  std::unique_ptr<mem::DramImage> dram;
  std::unique_ptr<mem::ChannelDemux> ctrl;
  std::unique_ptr<mem::ControllerBackend> backend;
  std::unique_ptr<mem::Cache> l1d;
  std::unique_ptr<mem::SequentialPrefetcher> prefetcher;
  std::unique_ptr<mem::SharedMemBanking> banking;
  std::unique_ptr<millipede::PrefetchBuffer> pb;
  std::vector<mem::LocalStore> lane_state;
  SmStats sm_stats;
  std::unique_ptr<StreamingMultiprocessor> sm;
};

TEST_F(SmFixture, AllThreadsExecuteToCompletion) {
  make(R"(
    csrr r1, TID
    addi r2, r1, 100
    halt
  )");
  // Assign TIDs across (group, slot, lane).
  u32 tid = 0;
  for (u32 g = 0; g < sm->groups(); ++g) {
    for (u32 s = 0; s < cfg.core.contexts; ++s) {
      for (u32 l = 0; l < sm->warp_width(); ++l) {
        sm->context(g, s, l).csr.set(isa::Csr::kTid, tid++);
      }
    }
  }
  run();
  EXPECT_EQ(sm->context(0, 0, 0).reg(2), 100u);
  EXPECT_EQ(sm->context(1, 3, 3).reg(2),
            100u + 1 * (4 * 4) + 3 * 4 + 3);
  // 32 threads x 3 instructions.
  EXPECT_EQ(sm_stats.thread_instructions.value, 96u);
}

TEST_F(SmFixture, UniformBranchesCostNoDivergence) {
  make(R"(
    li r1, 0
    li r2, 50
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
  )");
  run();
  EXPECT_EQ(sm_stats.divergent_branches.value, 0u);
}

TEST_F(SmFixture, DataDependentBranchesDiverge) {
  // Odd TIDs take the branch: divergence in every warp.
  make(R"(
    csrr r1, TID
    andi r2, r1, 1
    beq  r2, r0, even
    addi r3, r0, 111
    j    join
even:
    addi r3, r0, 222
join:
    halt
  )");
  u32 tid = 0;
  for (u32 g = 0; g < sm->groups(); ++g) {
    for (u32 s = 0; s < cfg.core.contexts; ++s) {
      for (u32 l = 0; l < sm->warp_width(); ++l) {
        sm->context(g, s, l).csr.set(isa::Csr::kTid, tid++);
      }
    }
  }
  run();
  EXPECT_EQ(sm_stats.divergent_branches.value, sm_stats.branches.value);
  EXPECT_GT(sm_stats.divergent_branches.value, 0u);
  // Check both arms executed correctly.
  EXPECT_EQ(sm->context(0, 0, 0).reg(3), 222u);  // tid 0 even
  EXPECT_EQ(sm->context(0, 0, 1).reg(3), 111u);  // tid 1 odd
}

TEST_F(SmFixture, DivergenceCostsMoreWarpInstructions) {
  const std::string divergent = R"(
    csrr r1, TID
    andi r2, r1, 1
    beq  r2, r0, even
    addi r3, r3, 1
    addi r3, r3, 1
    addi r3, r3, 1
    j    join
even:
    addi r3, r3, 2
    addi r3, r3, 2
    addi r3, r3, 2
join:
    halt
  )";
  make(divergent);
  u32 tid = 0;
  for (u32 g = 0; g < sm->groups(); ++g)
    for (u32 s = 0; s < cfg.core.contexts; ++s)
      for (u32 l = 0; l < sm->warp_width(); ++l)
        sm->context(g, s, l).csr.set(isa::Csr::kTid, tid++);
  run();
  const u64 warp_insts_divergent = sm_stats.warp_instructions.value;

  // Same program with a uniform branch (all even TIDs).
  make(divergent);
  tid = 0;
  for (u32 g = 0; g < sm->groups(); ++g)
    for (u32 s = 0; s < cfg.core.contexts; ++s)
      for (u32 l = 0; l < sm->warp_width(); ++l)
        sm->context(g, s, l).csr.set(isa::Csr::kTid, (tid++) * 2);
  run();
  EXPECT_GT(warp_insts_divergent, sm_stats.warp_instructions.value)
      << "divergent warps must issue both arms serially";
}

TEST_F(SmFixture, SharedMemoryLanePrivateConflictFree) {
  make(R"(
    csrr r1, TID
    andi r2, r1, 7
    slli r2, r2, 2
    li   r3, 5
    sw.l r3, 0(r2)     ; data-dependent local address
    lw.l r4, 0(r2)
    halt
  )");
  u32 tid = 0;
  for (u32 g = 0; g < sm->groups(); ++g)
    for (u32 s = 0; s < cfg.core.contexts; ++s)
      for (u32 l = 0; l < sm->warp_width(); ++l)
        sm->context(g, s, l).csr.set(isa::Csr::kTid, tid++);
  run();
  EXPECT_GT(sm_stats.shared_accesses.value, 0u);
  EXPECT_EQ(sm_stats.shared_conflict_cycles.value, 0u)
      << "lane-striped live state never conflicts";
  EXPECT_EQ(sm->context(0, 0, 0).reg(4), 5u);
}

TEST_F(SmFixture, CoalescedLoadsTouchFewLines) {
  // Warp lanes read consecutive words: one or two 128 B lines per warp.
  make(R"(
    csrr r1, TID
    slli r1, r1, 2
    lw   r2, 0(r1)
    halt
  )",
       /*warp_width=*/8);
  u32 tid = 0;
  for (u32 g = 0; g < sm->groups(); ++g)
    for (u32 s = 0; s < cfg.core.contexts; ++s)
      for (u32 l = 0; l < sm->warp_width(); ++l)
        sm->context(g, s, l).csr.set(isa::Csr::kTid, tid++);
  for (u32 i = 0; i < 64; ++i) dram->write_u32(i * 4, i + 1);
  run();
  // 4 warps (8 lanes each), consecutive words: 8 lanes * 4 B = 32 B per warp
  // -> exactly 1 line per warp load.
  EXPECT_EQ(sm_stats.global_load_warps.value, 4u);
  EXPECT_EQ(sm_stats.global_lines.value, 4u);
  EXPECT_EQ(sm->context(0, 0, 3).reg(2), 4u);
}

TEST_F(SmFixture, StridedLoadsTouchManyLines) {
  // Lanes read 128 B apart: one line per lane.
  make(R"(
    csrr r1, TID
    slli r1, r1, 7
    lw   r2, 0(r1)
    halt
  )",
       /*warp_width=*/8);
  u32 tid = 0;
  for (u32 g = 0; g < sm->groups(); ++g)
    for (u32 s = 0; s < cfg.core.contexts; ++s)
      for (u32 l = 0; l < sm->warp_width(); ++l)
        sm->context(g, s, l).csr.set(isa::Csr::kTid, tid++);
  run();
  EXPECT_EQ(sm_stats.global_lines.value, 8u * 4u)
      << "uncoalesced: one line per lane";
}

TEST_F(SmFixture, RowOrientedInputPathUsesPrefetchBuffer) {
  // Lane l reads word 0 of its own 64 B slab of row 0.
  make(R"(
    csrr r1, CID
    slli r1, r1, 6
    lw   r2, 0(r1)
    halt
  )",
       /*warp_width=*/8, /*row_oriented=*/true);
  for (u32 g = 0; g < sm->groups(); ++g)
    for (u32 s = 0; s < cfg.core.contexts; ++s)
      for (u32 l = 0; l < sm->warp_width(); ++l)
        sm->context(g, s, l).csr.set(isa::Csr::kCid, g * 8 + l);
  for (u32 i = 0; i < 128; ++i) dram->write_u32(i * 4, i);
  run();
  EXPECT_GT(stats.get("pb.hits") + stats.get("pb.fill_waits"), 0u);
  EXPECT_EQ(sm->context(0, 0, 1).reg(2), 16u);  // word 0 of slab 1
}

TEST_F(SmFixture, VwsNarrowWarpsLoseLessToDivergence) {
  const std::string branchy = R"(
    csrr r1, TID
    andi r2, r1, 3
    beq  r2, r0, a
    addi r3, r3, 1
    addi r3, r3, 1
    j    j1
a:
    addi r3, r3, 2
j1:
    andi r2, r1, 1
    beq  r2, r0, b
    addi r3, r3, 3
    j    j2
b:
    addi r3, r3, 4
    addi r3, r3, 4
j2:
    halt
  )";
  auto measure = [&](u32 width) {
    make(branchy, width);
    u32 tid = 0;
    for (u32 g = 0; g < sm->groups(); ++g)
      for (u32 s = 0; s < cfg.core.contexts; ++s)
        for (u32 l = 0; l < sm->warp_width(); ++l)
          sm->context(g, s, l).csr.set(isa::Csr::kTid, tid++);
    return run();
  };
  const u64 wide = measure(8);
  const u64 narrow = measure(2);
  EXPECT_LT(narrow, wide) << "narrower warps suffer less serialization";
}

}  // namespace
}  // namespace mlp::gpgpu
