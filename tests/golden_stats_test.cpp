// Golden-counter regression suite: every (architecture, benchmark) pair of
// the paper's 4x8 evaluation matrix is run at a fixed small input (rows=24,
// seed=1) and its FULL StatSet is compared counter-by-counter against a
// checked-in JSON snapshot. Any change to the timing model, the workloads,
// or the memory system that moves even one counter fails here with a
// readable per-counter diff — intentional changes regenerate the snapshots
// with:
//
//   UPDATE_GOLDEN=1 ctest -R GoldenStats
//
// The goldens live in tests/golden/ (path baked in via MLP_GOLDEN_DIR).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "trace/json.hpp"

namespace mlp {
namespace {

constexpr u64 kGoldenRows = 24;
constexpr u64 kGoldenSeed = 1;

struct ArchCase {
  arch::ArchKind kind;
  const char* name;
};

const ArchCase kArchCases[] = {
    {arch::ArchKind::kMillipede, "millipede"},
    {arch::ArchKind::kSsmc, "ssmc"},
    {arch::ArchKind::kGpgpu, "gpgpu"},
    {arch::ArchKind::kMulticore, "multicore"},
};

bool update_mode() {
  const char* env = std::getenv("UPDATE_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

std::string golden_path(const std::string& arch, const std::string& bench) {
  return std::string(MLP_GOLDEN_DIR) + "/" + arch + "-" + bench + ".json";
}

std::string render_golden(const std::string& arch, const std::string& bench,
                          const std::map<std::string, u64>& counters) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("arch");
  w.value(arch);
  w.key("bench");
  w.value(bench);
  w.key("rows");
  w.value(kGoldenRows);
  w.key("seed");
  w.value(kGoldenSeed);
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : counters) {
    w.newline();
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

std::map<std::string, u64> load_golden(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    ADD_FAILURE() << "missing golden file " << path
                  << " (regenerate with UPDATE_GOLDEN=1)";
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  const trace::JsonValue doc = trace::json_parse(os.str());
  std::map<std::string, u64> counters;
  const trace::JsonValue* obj = doc.find("counters");
  if (obj == nullptr || !obj->is_object()) {
    ADD_FAILURE() << "golden file " << path << " has no counters object";
    return counters;
  }
  for (const auto& [name, value] : obj->object) {
    counters[name] = value.unsigned_integer;
  }
  return counters;
}

/// Per-counter diff; empty string iff the sets match exactly.
std::string diff_counters(const std::map<std::string, u64>& golden,
                          const std::map<std::string, u64>& measured) {
  std::ostringstream os;
  for (const auto& [name, value] : golden) {
    const auto it = measured.find(name);
    if (it == measured.end()) {
      os << "  counter disappeared: " << name << " (golden " << value
         << ")\n";
    } else if (it->second != value) {
      const i64 delta = static_cast<i64>(it->second) -
                        static_cast<i64>(value);
      os << "  " << name << ": golden " << value << ", measured "
         << it->second << " (" << (delta > 0 ? "+" : "") << delta << ")\n";
    }
  }
  for (const auto& [name, value] : measured) {
    if (golden.count(name) == 0) {
      os << "  new counter not in golden: " << name << " = " << value
         << "\n";
    }
  }
  return os.str();
}

/// The whole 4x8 matrix in one parallel batch (each point is an isolated
/// deterministic simulation, so the pool only changes wall-clock time).
/// `block_cache` false re-runs the matrix on the legacy per-edge decode
/// path; the SAME goldens pin both interpreter modes.
std::vector<sim::MatrixResult> run_golden_matrix(bool block_cache = true) {
  std::vector<sim::MatrixJob> jobs;
  for (const ArchCase& arch_case : kArchCases) {
    for (const std::string& bench : workloads::bmla_names()) {
      sim::MatrixJob job;
      job.kind = arch_case.kind;
      job.bench = bench;
      job.tag = arch_case.name;  // carries the golden file stem's arch part
      job.options.rows = kGoldenRows;
      job.options.seed = kGoldenSeed;
      job.options.cfg.block_cache = block_cache;
      jobs.push_back(job);
    }
  }
  return sim::run_matrix(jobs, 0);
}

TEST(GoldenStats, FullMatrixMatchesSnapshots) {
  const std::vector<sim::MatrixResult> results = run_golden_matrix();
  ASSERT_EQ(results.size(), 32u);  // 4 architectures x 8 benchmarks
  bool updated = false;
  for (const sim::MatrixResult& run : results) {
    const std::string& arch = run.job.tag;
    const std::string& bench = run.job.bench;
    ASSERT_TRUE(run.ok()) << arch << "/" << bench << ": " << run.error;
    const std::map<std::string, u64> measured(run.result.stats.begin(),
                                              run.result.stats.end());
    const std::string path = golden_path(arch, bench);
    if (update_mode()) {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << render_golden(arch, bench, measured);
      ASSERT_TRUE(out.good()) << "cannot write " << path;
      updated = true;
      continue;
    }
    const std::map<std::string, u64> golden = load_golden(path);
    if (golden.empty()) continue;  // load already reported the failure
    const std::string diff = diff_counters(golden, measured);
    EXPECT_TRUE(diff.empty())
        << arch << "/" << bench << " drifted from " << path << ":\n"
        << diff << "  (intentional? regenerate with UPDATE_GOLDEN=1)";
  }
  if (updated) {
    GTEST_SKIP() << "golden snapshots regenerated; rerun without "
                    "UPDATE_GOLDEN to verify";
  }
}

TEST(GoldenStats, NoBlockCachePathMatchesSameSnapshots) {
  // The decoded-block cache is a simulator-speed optimization: with it
  // disabled (the --no-block-cache escape hatch) every counter must hit the
  // SAME goldens, decode.* accounting included. Update mode only writes from
  // the cache-on matrix above, so this pass pins cache-off against it.
  if (update_mode()) {
    GTEST_SKIP() << "goldens regenerate from the cache-on matrix only";
  }
  const std::vector<sim::MatrixResult> results =
      run_golden_matrix(/*block_cache=*/false);
  ASSERT_EQ(results.size(), 32u);
  for (const sim::MatrixResult& run : results) {
    const std::string& arch = run.job.tag;
    const std::string& bench = run.job.bench;
    ASSERT_TRUE(run.ok()) << arch << "/" << bench << ": " << run.error;
    const std::map<std::string, u64> measured(run.result.stats.begin(),
                                              run.result.stats.end());
    const std::map<std::string, u64> golden =
        load_golden(golden_path(arch, bench));
    if (golden.empty()) continue;  // load already reported the failure
    const std::string diff = diff_counters(golden, measured);
    EXPECT_TRUE(diff.empty())
        << arch << "/" << bench
        << " with --no-block-cache drifted from the shared golden:\n"
        << diff;
  }
}

TEST(GoldenStats, DiffCatchesSingleCounterPerturbation) {
  // Negative control: the suite must flag a one-counter, off-by-one
  // perturbation of a real snapshot — otherwise it guards nothing.
  const std::map<std::string, u64> golden =
      load_golden(golden_path("millipede", "count"));
  ASSERT_FALSE(golden.empty());
  std::map<std::string, u64> perturbed = golden;
  const std::string victim = "dram.row_misses";
  ASSERT_TRUE(perturbed.count(victim));
  perturbed[victim] += 1;
  const std::string diff = diff_counters(golden, perturbed);
  EXPECT_FALSE(diff.empty());
  EXPECT_NE(diff.find(victim), std::string::npos) << diff;
  EXPECT_NE(diff.find("(+1)"), std::string::npos) << diff;
  // And only the perturbed counter is reported.
  EXPECT_EQ(std::count(diff.begin(), diff.end(), '\n'), 1) << diff;
}

TEST(GoldenStats, DiffCatchesMissingAndNewCounters) {
  std::map<std::string, u64> golden = {{"a.x", 1}, {"b.y", 2}};
  std::map<std::string, u64> measured = {{"a.x", 1}, {"c.z", 3}};
  const std::string diff = diff_counters(golden, measured);
  EXPECT_NE(diff.find("counter disappeared: b.y"), std::string::npos);
  EXPECT_NE(diff.find("new counter not in golden: c.z"), std::string::npos);
  EXPECT_TRUE(diff_counters(golden, golden).empty());
}

}  // namespace
}  // namespace mlp
