// CFG and reconvergence (immediate post-dominator) tests. The SIMT model's
// correctness hinges on these reconvergence points.

#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/cfg.hpp"

namespace mlp::isa {
namespace {

Program prog(const std::string& src) { return must_assemble("cfg", src); }

TEST(Cfg, StraightLineIsOneBlock) {
  Program p = prog("addi r1, r0, 1\n addi r2, r0, 2\n halt\n");
  Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].first, 0u);
  EXPECT_EQ(cfg.blocks()[0].last, 2u);
  ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].succs[0], Cfg::kExitBlock);
}

TEST(Cfg, IfThenElseDiamond) {
  // 0: beq -> else ; 1: then ; 2: j join ; 3: else ; 4(join): halt
  Program p = prog(R"(
    beq r1, r2, else
    addi r3, r0, 1
    j join
else:
    addi r3, r0, 2
join:
    halt
  )");
  Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 4u);
  // Entry block has two successors (then, else).
  EXPECT_EQ(cfg.blocks()[cfg.block_of(0)].succs.size(), 2u);
  // Both arms flow to the join block.
  const u32 join = cfg.block_of(p.label("join"));
  EXPECT_EQ(cfg.blocks()[cfg.block_of(1)].succs[0], join);
  EXPECT_EQ(cfg.blocks()[cfg.block_of(3)].succs[0], join);
}

TEST(Cfg, LoopBackEdge) {
  Program p = prog(R"(
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
  )");
  Cfg cfg = Cfg::build(p);
  const u32 loop_block = cfg.block_of(0);
  const auto& succs = cfg.blocks()[loop_block].succs;
  EXPECT_NE(std::find(succs.begin(), succs.end(), loop_block), succs.end());
}

TEST(Reconvergence, DiamondReconvergesAtJoin) {
  Program p = prog(R"(
    beq r1, r2, else
    addi r3, r0, 1
    j join
else:
    addi r3, r0, 2
join:
    addi r4, r0, 3
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), p.label("join"));
}

TEST(Reconvergence, LoopBranchReconvergesAfterLoop) {
  Program p = prog(R"(
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    addi r3, r0, 9
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  // The loop branch's ipdom is the loop exit (pc 2).
  EXPECT_EQ(table.at(1), 2u);
}

TEST(Reconvergence, NestedIfInsideLoop) {
  Program p = prog(R"(
loop:
    beq  r1, r2, skip
    addi r3, r3, 1
skip:
    addi r1, r1, 1
    blt  r1, r4, loop
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), p.label("skip"));  // inner if joins at skip
  EXPECT_EQ(table.at(3), 4u);               // loop branch joins at loop exit
}

TEST(Reconvergence, BranchToHaltHasNoJoin) {
  // One arm halts: there is no post-dominating join before exit.
  Program p = prog(R"(
    beq r1, r2, stop
    addi r3, r0, 1
    halt
stop:
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), ReconvergenceTable::kNoReconv);
}

TEST(Reconvergence, SequentialDiamonds) {
  Program p = prog(R"(
    beq r1, r2, a_else
    addi r3, r0, 1
a_else:
    beq r1, r4, b_else
    addi r5, r0, 2
b_else:
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), p.label("a_else"));
  EXPECT_EQ(table.at(2), p.label("b_else"));
}

}  // namespace
}  // namespace mlp::isa
