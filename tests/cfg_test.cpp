// CFG and reconvergence (immediate post-dominator) tests. The SIMT model's
// correctness hinges on these reconvergence points.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "isa/assembler.hpp"
#include "isa/cfg.hpp"
#include "workloads/bmla.hpp"

namespace mlp::isa {
namespace {

Program prog(const std::string& src) { return must_assemble("cfg", src); }

TEST(Cfg, StraightLineIsOneBlock) {
  Program p = prog("addi r1, r0, 1\n addi r2, r0, 2\n halt\n");
  Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].first, 0u);
  EXPECT_EQ(cfg.blocks()[0].last, 2u);
  ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u);
  EXPECT_EQ(cfg.blocks()[0].succs[0], Cfg::kExitBlock);
}

TEST(Cfg, IfThenElseDiamond) {
  // 0: beq -> else ; 1: then ; 2: j join ; 3: else ; 4(join): halt
  Program p = prog(R"(
    beq r1, r2, else
    addi r3, r0, 1
    j join
else:
    addi r3, r0, 2
join:
    halt
  )");
  Cfg cfg = Cfg::build(p);
  ASSERT_EQ(cfg.blocks().size(), 4u);
  // Entry block has two successors (then, else).
  EXPECT_EQ(cfg.blocks()[cfg.block_of(0)].succs.size(), 2u);
  // Both arms flow to the join block.
  const u32 join = cfg.block_of(p.label("join"));
  EXPECT_EQ(cfg.blocks()[cfg.block_of(1)].succs[0], join);
  EXPECT_EQ(cfg.blocks()[cfg.block_of(3)].succs[0], join);
}

TEST(Cfg, LoopBackEdge) {
  Program p = prog(R"(
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    halt
  )");
  Cfg cfg = Cfg::build(p);
  const u32 loop_block = cfg.block_of(0);
  const auto& succs = cfg.blocks()[loop_block].succs;
  EXPECT_NE(std::find(succs.begin(), succs.end(), loop_block), succs.end());
}

TEST(Reconvergence, DiamondReconvergesAtJoin) {
  Program p = prog(R"(
    beq r1, r2, else
    addi r3, r0, 1
    j join
else:
    addi r3, r0, 2
join:
    addi r4, r0, 3
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), p.label("join"));
}

TEST(Reconvergence, LoopBranchReconvergesAfterLoop) {
  Program p = prog(R"(
loop:
    addi r1, r1, 1
    blt  r1, r2, loop
    addi r3, r0, 9
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  // The loop branch's ipdom is the loop exit (pc 2).
  EXPECT_EQ(table.at(1), 2u);
}

TEST(Reconvergence, NestedIfInsideLoop) {
  Program p = prog(R"(
loop:
    beq  r1, r2, skip
    addi r3, r3, 1
skip:
    addi r1, r1, 1
    blt  r1, r4, loop
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), p.label("skip"));  // inner if joins at skip
  EXPECT_EQ(table.at(3), 4u);               // loop branch joins at loop exit
}

TEST(Reconvergence, BranchToHaltHasNoJoin) {
  // One arm halts: there is no post-dominating join before exit.
  Program p = prog(R"(
    beq r1, r2, stop
    addi r3, r0, 1
    halt
stop:
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), ReconvergenceTable::kNoReconv);
}

TEST(Reconvergence, SequentialDiamonds) {
  Program p = prog(R"(
    beq r1, r2, a_else
    addi r3, r0, 1
a_else:
    beq r1, r4, b_else
    addi r5, r0, 2
b_else:
    halt
  )");
  ReconvergenceTable table = ReconvergenceTable::build(p);
  EXPECT_EQ(table.at(0), p.label("a_else"));
  EXPECT_EQ(table.at(2), p.label("b_else"));
}

// --- Block-boundary property test over every real kernel binary. The
// --- decoded-block cache decodes whole blocks on first touch, so these
// --- invariants are exactly what makes that sound: control only ever
// --- enters a block at .first and only ever leaves from .last.

TEST(CfgProperty, BmlaBinariesHaveWellFormedBlocks) {
  for (const std::string& name : workloads::bmla_names()) {
    const workloads::Workload wl =
        workloads::make_bmla(name, workloads::WorkloadParams{});
    const Program& p = wl.program;
    const Cfg cfg = Cfg::build(p);
    const auto& blocks = cfg.blocks();
    ASSERT_FALSE(blocks.empty()) << name;

    // Blocks partition [0, size): every pc belongs to exactly the block
    // that spans it, and spans are well-ordered.
    std::vector<bool> covered(p.size(), false);
    for (u32 b = 0; b < blocks.size(); ++b) {
      const BasicBlock& bb = blocks[b];
      ASSERT_LE(bb.first, bb.last) << name << " block " << b;
      ASSERT_LT(bb.last, p.size()) << name << " block " << b;
      for (u32 pc = bb.first; pc <= bb.last; ++pc) {
        EXPECT_FALSE(covered[pc])
            << name << ": pc " << pc << " in two blocks";
        covered[pc] = true;
        EXPECT_EQ(cfg.block_of(pc), b) << name << ": pc " << pc;
      }
    }
    EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                            [](bool c) { return c; }))
        << name << ": pcs not covered by any block";

    for (u32 b = 0; b < blocks.size(); ++b) {
      const BasicBlock& bb = blocks[b];
      // Terminator-only exits: no branch/jump/halt strictly inside.
      for (u32 pc = bb.first; pc < bb.last; ++pc) {
        const OpInfo& info = op_info(p.at(pc).op);
        EXPECT_FALSE(info.is_branch || info.is_jump ||
                     p.at(pc).op == Opcode::kHalt)
            << name << ": control transfer at pc " << pc
            << " strictly inside block " << b;
      }
      // Successor ids are real blocks or the virtual exit.
      for (u32 succ : bb.succs) {
        EXPECT_TRUE(succ == Cfg::kExitBlock || succ < blocks.size())
            << name << " block " << b;
      }
      // The terminator's targets appear among the successors.
      const Instr& term = p.at(bb.last);
      const OpInfo& info = op_info(term.op);
      const auto has_succ = [&](u32 id) {
        return std::find(bb.succs.begin(), bb.succs.end(), id) !=
               bb.succs.end();
      };
      if (info.is_branch) {
        const u32 target =
            static_cast<u32>(static_cast<i32>(bb.last) + term.imm);
        EXPECT_TRUE(has_succ(cfg.block_of(target)))
            << name << " block " << b << ": branch target missing";
        if (bb.last + 1 < p.size()) {
          EXPECT_TRUE(has_succ(cfg.block_of(bb.last + 1)))
              << name << " block " << b << ": fallthrough missing";
        }
      } else if (term.op == Opcode::kJal) {
        const u32 target =
            static_cast<u32>(static_cast<i32>(bb.last) + term.imm);
        EXPECT_TRUE(has_succ(cfg.block_of(target)))
            << name << " block " << b << ": jal target missing";
      } else if (term.op == Opcode::kHalt || term.op == Opcode::kJalr) {
        EXPECT_TRUE(has_succ(Cfg::kExitBlock)) << name << " block " << b;
      }
    }

    // Single entry: every branch/jal target in the program lands on a
    // block's first instruction, never mid-block.
    for (u32 pc = 0; pc < p.size(); ++pc) {
      const Instr& in = p.at(pc);
      const OpInfo& info = op_info(in.op);
      if (!info.is_branch && in.op != Opcode::kJal) continue;
      const u32 target = static_cast<u32>(static_cast<i32>(pc) + in.imm);
      ASSERT_LT(target, p.size()) << name << ": pc " << pc;
      EXPECT_EQ(blocks[cfg.block_of(target)].first, target)
          << name << ": pc " << pc << " jumps into the middle of a block";
    }
  }
}

}  // namespace
}  // namespace mlp::isa
