// Tests for the Section IV-D node/cluster scale model and the Section IV-F
// voltage-scaling extension.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/node.hpp"
#include "sim/runner.hpp"

namespace mlp::sim {
namespace {

TEST(NodeScale, ReproducesPaperOrdersOfMagnitude) {
  // The paper's example: Map of tens of millions of records per node takes
  // seconds; per-node Reduce hundreds of microseconds; cluster Reduce tens
  // of milliseconds.
  NodeScaleConfig node;  // 32 processors, 40M records, 5000 nodes
  const NodeScaleResult r =
      run_node_scale("count", MachineConfig::paper_defaults(), node);
  // (The paper's absolute "few seconds" for Map does not reconcile with its
  // own per-processor throughput; the load-bearing claim is the RATIO.)
  EXPECT_GT(r.map_seconds, 1e-4);
  EXPECT_LT(r.node_reduce_seconds, 1e-3);
  EXPECT_LT(r.cluster_reduce_seconds, 1.0);
  // Reduce must be a small fraction of Map — the paper's argument that
  // dedicated Reduce communication hardware is not worth it.
  EXPECT_LT(r.reduce_fraction(), 0.05);
  EXPECT_EQ(r.processor_run.verification, "");
}

TEST(NodeScale, ReduceCostScalesWithStateFootprint) {
  NodeScaleConfig node;
  const NodeScaleResult small =
      run_node_scale("count", MachineConfig::paper_defaults(), node);
  const NodeScaleResult big =
      run_node_scale("gda", MachineConfig::paper_defaults(), node);
  EXPECT_GT(big.state_words, 10 * small.state_words);
  EXPECT_GT(big.node_reduce_seconds, small.node_reduce_seconds);
}

TEST(VoltageScaling, LowersCoreEnergyBeyondDfsOnMemoryBoundKernel) {
  SuiteOptions dfs;
  SuiteOptions dvs;
  dvs.cfg.millipede.voltage_scaling = true;
  const arch::RunResult f_only =
      run_verified(arch::ArchKind::kMillipede, "count", dfs);
  const arch::RunResult fv =
      run_verified(arch::ArchKind::kMillipede, "count", dvs);
  ASSERT_LT(f_only.final_clock_mhz, 690.0) << "count must be rate-matched";
  EXPECT_LT(fv.energy.core_j, f_only.energy.core_j);
  // Quadratic in V, V tracking f (above the floor).
  const double ratio = fv.final_clock_mhz / 700.0;
  const double expected =
      std::max(dvs.cfg.millipede.min_voltage_ratio, ratio);
  EXPECT_NEAR(fv.energy.core_j / f_only.energy.core_j, expected * expected,
              0.02);
}

TEST(VoltageScaling, NoEffectAtNominalClock) {
  SuiteOptions dvs;
  dvs.cfg.millipede.voltage_scaling = true;
  dvs.records = 4096;  // too few rows to leave warmup: clock stays nominal
  const arch::RunResult r =
      run_verified(arch::ArchKind::kMillipede, "pca", dvs);
  EXPECT_NEAR(r.final_clock_mhz, 700.0, 1.0);
}

}  // namespace
}  // namespace mlp::sim
