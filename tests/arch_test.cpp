// End-to-end architecture tests: every system runs real BMLA kernels through
// its full timing stack and must reproduce the host golden reference
// (verification string empty). On top of correctness, the paper's
// first-order qualitative claims are asserted: Millipede beats GPGPU on
// branchy kernels and SSMC on row locality; flow control prevents premature
// evictions; rate matching lowers the clock on memory-bound kernels; VWS
// picks narrow warps for divergent BMLAs.

#include <gtest/gtest.h>

#include "arch/system.hpp"

namespace mlp::arch {
namespace {

workloads::Workload small(const std::string& name, u64 records = 8192) {
  workloads::WorkloadParams params;
  params.num_records = records;
  return workloads::make_bmla(name, params);
}

MachineConfig paper_cfg() { return MachineConfig::paper_defaults(); }

// --- Correctness through the full timing stack, all archs x sample kernels.

struct ArchCase {
  ArchKind kind;
  const char* bench;
};

class ArchGolden : public ::testing::TestWithParam<ArchCase> {};

TEST_P(ArchGolden, TimingRunMatchesReference) {
  const ArchCase& c = GetParam();
  const workloads::Workload wl = small(c.bench, 4096);
  const RunResult result = run_arch(c.kind, paper_cfg(), wl);
  EXPECT_EQ(result.verification, "") << result.arch << "/" << result.workload;
  EXPECT_GT(result.runtime_ps, 0u);
  EXPECT_GT(result.thread_instructions, 0u);
  EXPECT_GT(result.energy.total_j(), 0.0);
}

std::string case_name(const ::testing::TestParamInfo<ArchCase>& info) {
  std::string name = std::string(arch_name(info.param.kind)) + "_" +
                     info.param.bench;
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllArchs, ArchGolden,
    ::testing::Values(
        ArchCase{ArchKind::kMillipede, "count"},
        ArchCase{ArchKind::kMillipede, "nbayes"},
        ArchCase{ArchKind::kMillipede, "classify"},
        ArchCase{ArchKind::kMillipede, "pca"},
        ArchCase{ArchKind::kMillipedeNoFlowControl, "count"},
        ArchCase{ArchKind::kMillipedeNoFlowControl, "nbayes"},
        ArchCase{ArchKind::kMillipedeNoRateMatch, "variance"},
        ArchCase{ArchKind::kSsmc, "count"},
        ArchCase{ArchKind::kSsmc, "nbayes"},
        ArchCase{ArchKind::kSsmc, "kmeans"},
        ArchCase{ArchKind::kGpgpu, "count"},
        ArchCase{ArchKind::kGpgpu, "nbayes"},
        ArchCase{ArchKind::kGpgpu, "gda"},
        ArchCase{ArchKind::kVws, "count"},
        ArchCase{ArchKind::kVwsRow, "count"},
        ArchCase{ArchKind::kVwsRow, "variance"},
        ArchCase{ArchKind::kMulticore, "count"},
        ArchCase{ArchKind::kMulticore, "nbayes"}),
    case_name);

// --- Paper-shape assertions ---

TEST(ArchShape, MillipedeOutperformsGpgpuOnBranchyKernel) {
  const workloads::Workload wl = small("count");
  const RunResult mlp = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  const RunResult gpu = run_arch(ArchKind::kGpgpu, paper_cfg(), wl);
  EXPECT_LT(mlp.runtime_ps, gpu.runtime_ps)
      << "SIMT divergence must cost the GPGPU on 70/30 branches";
}

TEST(ArchShape, MillipedeOutperformsSsmc) {
  const workloads::Workload wl = small("variance");
  const RunResult mlp = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  const RunResult ssmc = run_arch(ArchKind::kSsmc, paper_cfg(), wl);
  EXPECT_LT(mlp.runtime_ps, ssmc.runtime_ps)
      << "row-orientedness must beat straying cache-block access";
}

TEST(ArchShape, SsmcDegradesRowLocalityMillipedeDoesNot) {
  const workloads::Workload wl = small("nbayes");
  const RunResult mlp = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  const RunResult ssmc = run_arch(ArchKind::kSsmc, paper_cfg(), wl);
  // Millipede: one activation per data row (plus state traffic none).
  // Its activation count should be close to the layout's row count.
  const u64 rows = ssmc.input_words * 4 / 2048 + 1;
  EXPECT_LE(mlp.stats.at("dram.row_misses"), rows + 64);
  // SSMC interleaves line fills from strayed cores + state writebacks:
  // strictly more activations for the same data.
  EXPECT_GT(ssmc.stats.at("dram.row_misses"),
            mlp.stats.at("dram.row_misses"));
  EXPECT_GT(ssmc.row_miss_rate, 0.02);
}

TEST(ArchShape, FlowControlPreventsPrematureEviction) {
  const workloads::Workload wl = small("sample");
  const RunResult with = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  EXPECT_EQ(with.stats.at("pb.premature_evictions"), 0u);
  EXPECT_EQ(with.stats.at("pb.direct_fetches"), 0u);
}

TEST(ArchShape, RateMatchingLowersClockOnMemoryBoundKernel) {
  // Enough rows (128) for the matcher to pass warmup and converge.
  const workloads::Workload wl = small("count", 128 * 512);
  const RunResult matched = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  EXPECT_LT(matched.final_clock_mhz, 700.0)
      << "count is memory-bound: the clock must step down";
  const RunResult nominal =
      run_arch(ArchKind::kMillipedeNoRateMatch, paper_cfg(), wl);
  EXPECT_NEAR(nominal.final_clock_mhz, 700.0, 1.0);  // period rounding
  // Memory-bound: runtime barely changes, core energy drops.
  EXPECT_LT(matched.runtime_ps,
            static_cast<Picos>(1.25 * static_cast<double>(nominal.runtime_ps)));
  EXPECT_LT(matched.energy.core_j, nominal.energy.core_j);
}

TEST(ArchShape, VwsPicksNarrowWarpsForDivergentKernels) {
  const workloads::Workload wl = small("count");
  const RunResult vws = run_arch(ArchKind::kVws, paper_cfg(), wl);
  EXPECT_EQ(vws.warp_width, 4u);
  const RunResult gpu = run_arch(ArchKind::kGpgpu, paper_cfg(), wl);
  EXPECT_EQ(gpu.warp_width, 32u);
}

TEST(ArchShape, NarrowWarpsWinOnComputeBoundBranchyKernel) {
  // On a memory-bound kernel all saturating architectures tie; divergence
  // shows where compute is the constraint (variance, ~18 insts/word).
  const workloads::Workload wl = small("variance", 48 * 1024);
  const RunResult vws = run_arch(ArchKind::kVws, paper_cfg(), wl);
  const RunResult gpu = run_arch(ArchKind::kGpgpu, paper_cfg(), wl);
  EXPECT_LT(vws.runtime_ps, gpu.runtime_ps)
      << "narrow warps must reduce divergence losses";
}

TEST(ArchShape, VwsRowImprovesOnVws) {
  const workloads::Workload wl = small("variance");
  const RunResult vws = run_arch(ArchKind::kVws, paper_cfg(), wl);
  const RunResult vws_row = run_arch(ArchKind::kVwsRow, paper_cfg(), wl);
  EXPECT_LT(vws_row.runtime_ps, vws.runtime_ps)
      << "row-orientedness must help VWS too (Millipede generality)";
}

TEST(ArchShape, MillipedeNodeCrushesConventionalMulticore) {
  // Fig. 5 framing: a 32-processor node vs one multicore (see
  // bench/fig5_multicore.cpp); processors are independent so the node's
  // runtime is the single-processor runtime / 32.
  const workloads::Workload wl = small("count");
  const RunResult mlp = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  const RunResult mc = run_arch(ArchKind::kMulticore, paper_cfg(), wl);
  EXPECT_LT(mlp.runtime_ps / 32, mc.runtime_ps);
  EXPECT_LT(mlp.energy.total_j(), mc.energy.total_j())
      << "70 pJ/bit off-chip + OoO overheads dominate";
}

TEST(ArchShape, MillipedeEnergyBeatsGpgpuAndSsmc) {
  const workloads::Workload wl = small("nbayes");
  const RunResult mlp = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  const RunResult gpu = run_arch(ArchKind::kGpgpu, paper_cfg(), wl);
  const RunResult ssmc = run_arch(ArchKind::kSsmc, paper_cfg(), wl);
  EXPECT_LT(mlp.energy.total_j(), gpu.energy.total_j());
  EXPECT_LT(mlp.energy.total_j(), ssmc.energy.total_j());
}

TEST(ArchShape, InstsPerWordConsistentAcrossArchitectures) {
  // MIMD architectures execute identical dynamic instruction counts.
  const workloads::Workload wl = small("count", 4096);
  const RunResult mlp = run_arch(ArchKind::kMillipede, paper_cfg(), wl);
  const RunResult ssmc = run_arch(ArchKind::kSsmc, paper_cfg(), wl);
  EXPECT_EQ(mlp.thread_instructions, ssmc.thread_instructions);
  EXPECT_NEAR(mlp.insts_per_word, ssmc.insts_per_word, 1e-9);
}

// --- Naming and shared result finalization ---

TEST(ArchNames, EveryKindRoundTripsThroughItsName) {
  for (const ArchKind kind : all_arch_kinds()) {
    const char* name = arch_name(kind);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "");
    ArchKind back = ArchKind::kMillipede;
    EXPECT_TRUE(arch_from_name(name, &back)) << name;
    EXPECT_EQ(back, kind) << name;
  }
  ArchKind kind = ArchKind::kMillipede;
  EXPECT_FALSE(arch_from_name("no-such-arch", &kind));
}

TEST(FinalizeResult, ZeroDenominatorsYieldZeroNotNan) {
  // A degenerate run — nothing executed, nothing loaded, no row accesses —
  // must finalize to clean zeros, not NaN/inf: the CSV and JSON reports
  // print these fields unconditionally.
  StatSet stats;
  RunResult r;
  r.thread_instructions = 0;
  r.input_words = 0;
  finalize_result(&r, /*branch_count=*/0, stats);
  EXPECT_EQ(r.insts_per_word, 0.0);
  EXPECT_EQ(r.branches_per_inst, 0.0);
  EXPECT_EQ(r.row_miss_rate, 0.0);
  EXPECT_TRUE(r.stats.empty());

  // Zero input words with nonzero instructions (and vice versa) still only
  // zero the affected ratio.
  Counter hits, misses;
  stats.add("dram.row_hits", &hits);
  stats.add("dram.row_misses", &misses);
  hits.inc(3);
  misses.inc(1);
  RunResult partial;
  partial.thread_instructions = 100;
  partial.input_words = 0;
  finalize_result(&partial, /*branch_count=*/25, stats);
  EXPECT_EQ(partial.insts_per_word, 0.0);
  EXPECT_DOUBLE_EQ(partial.branches_per_inst, 0.25);
  EXPECT_DOUBLE_EQ(partial.row_miss_rate, 0.25);
  EXPECT_EQ(partial.stats.at("dram.row_hits"), 3u);
}

}  // namespace
}  // namespace mlp::arch
