// Cross-cutting integration invariants over whole-system runs: traffic
// conservation, result-field consistency, scaling monotonicity, and
// cross-architecture agreement on functional outputs.

#include <gtest/gtest.h>

#include "arch/system.hpp"

namespace mlp::arch {
namespace {

workloads::Workload wl(const std::string& name, u64 records) {
  workloads::WorkloadParams params;
  params.num_records = records;
  return workloads::make_bmla(name, params);
}

TEST(Integration, MillipedeFetchesEveryDataRowExactlyOnce) {
  const workloads::Workload workload = wl("nbayes", 16384);
  const RunResult r =
      run_arch(ArchKind::kMillipede, MachineConfig::paper_defaults(),
               workload);
  // 16384 records x 9 fields, 512 records/group -> 32 groups x 9 rows.
  const u64 rows = 32 * 9;
  EXPECT_EQ(r.stats.at("pb.row_prefetches"), rows);
  EXPECT_EQ(r.stats.at("dram.bytes"), rows * 2048);
  EXPECT_EQ(r.stats.at("dram.row_misses") + r.stats.at("dram.row_hits"),
            rows);
}

TEST(Integration, CacheArchitecturesFetchAtLeastTheInput) {
  for (const ArchKind kind : {ArchKind::kSsmc, ArchKind::kGpgpu}) {
    const workloads::Workload workload = wl("count", 16384);
    const RunResult r =
        run_arch(kind, MachineConfig::paper_defaults(), workload);
    EXPECT_GE(r.stats.at("dram.bytes"), workload.num_records * 4)
        << arch_name(kind);
  }
}

TEST(Integration, ResultFieldsAreInternallyConsistent) {
  const workloads::Workload workload = wl("variance", 8192);
  for (const ArchKind kind :
       {ArchKind::kMillipede, ArchKind::kSsmc, ArchKind::kGpgpu,
        ArchKind::kMulticore}) {
    const RunResult r =
        run_arch(kind, MachineConfig::paper_defaults(), workload);
    EXPECT_EQ(r.input_words, workload.num_records * workload.fields);
    EXPECT_NEAR(r.insts_per_word * static_cast<double>(r.input_words),
                static_cast<double>(r.thread_instructions), 1.0)
        << arch_name(kind);
    EXPECT_GT(r.branches_per_inst, 0.0);
    EXPECT_LT(r.branches_per_inst, 0.5);
    EXPECT_GE(r.energy.core_j, 0.0);
    EXPECT_GE(r.energy.dram_j, 0.0);
    EXPECT_GE(r.energy.leak_j, 0.0);
  }
}

TEST(Integration, RuntimeScalesLinearlyWithRecords) {
  const RunResult small_run = run_arch(
      ArchKind::kMillipedeNoRateMatch, MachineConfig::paper_defaults(),
      wl("count", 32768));
  const RunResult big_run = run_arch(
      ArchKind::kMillipedeNoRateMatch, MachineConfig::paper_defaults(),
      wl("count", 131072));
  const double ratio = static_cast<double>(big_run.runtime_ps) /
                       static_cast<double>(small_run.runtime_ps);
  EXPECT_NEAR(ratio, 4.0, 0.5) << "steady state implies linear scaling";
}

TEST(Integration, MimdArchitecturesAgreeOnIntegerResults) {
  // SSMC and Millipede execute identical binaries over identical data; the
  // integer parts of the reduced state must agree EXACTLY (floats may
  // differ in accumulation order).
  const workloads::Workload workload = wl("nbayes", 4096);
  const MachineConfig cfg = MachineConfig::paper_defaults();
  PreparedInput a = prepare_input(cfg, workload, 1);
  const auto reference = workload.reference(a.image, a.layout);
  for (const ArchKind kind : {ArchKind::kMillipede, ArchKind::kSsmc}) {
    const RunResult r = run_arch(kind, cfg, workload, 1);
    EXPECT_EQ(r.verification, "") << arch_name(kind);
  }
  // nbayes is all-integer: verification above already implies exactness
  // given its tolerance, but make the property explicit.
  EXPECT_LT(workload.tolerance, 1e-6);
}

TEST(Integration, StatsSnapshotContainsCoreCountersForAllArchs) {
  for (const ArchKind kind :
       {ArchKind::kMillipede, ArchKind::kSsmc, ArchKind::kMulticore}) {
    const RunResult r =
        run_arch(kind, MachineConfig::paper_defaults(), wl("count", 4096));
    EXPECT_TRUE(r.stats.count("exec.instructions")) << arch_name(kind);
    EXPECT_TRUE(r.stats.count("dram.row_misses")) << arch_name(kind);
  }
  const RunResult g =
      run_arch(ArchKind::kGpgpu, MachineConfig::paper_defaults(),
               wl("count", 4096));
  EXPECT_TRUE(g.stats.count("sm.warp_instructions"));
}

}  // namespace
}  // namespace mlp::arch
