// Thread pool and parallel matrix harness tests: submission-order results,
// exception propagation through futures, failure collection, and the key
// harness guarantee — identical simulation results for any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/pool.hpp"
#include "sim/prepare.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace mlp::sim {
namespace {

TEST(Pool, RunsEveryTaskAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(Pool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(Pool, ExceptionPropagatesToTheCaller) {
  ThreadPool pool(2);
  std::future<int> ok = pool.submit([] { return 7; });
  std::future<int> bad = pool.submit(
      []() -> int { throw std::runtime_error("kernel exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(Pool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(counter.load(), 32);
}

TEST(Matrix, ResultsComeBackInSubmissionOrder) {
  SuiteOptions options;
  options.records = 1024;
  std::vector<MatrixJob> jobs;
  const std::vector<std::string> order = {"variance", "count", "sample"};
  for (const std::string& bench : order) {
    jobs.push_back({arch::ArchKind::kMillipede, bench, options, bench});
  }
  const std::vector<MatrixResult> results = run_matrix(jobs, 3);
  ASSERT_EQ(results.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_EQ(results[i].job.tag, order[i]);
    EXPECT_EQ(results[i].result.workload, order[i]);
  }
}

TEST(Matrix, CollectsFailuresInsteadOfAborting) {
  SuiteOptions options;
  options.records = 1024;
  const std::vector<MatrixJob> jobs = {
      {arch::ArchKind::kMillipede, "count", options, ""},
      {arch::ArchKind::kMillipede, "no-such-bench", options, ""},
      {arch::ArchKind::kSsmc, "sample", options, ""},
  };
  const std::vector<MatrixResult> results = run_matrix(jobs, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("unknown benchmark"), std::string::npos);
  EXPECT_TRUE(results[2].ok());
}

// The harness's core guarantee: jobs share no mutable state, so thread
// count must not change a single bit of any result.
TEST(Matrix, DeterministicAcrossThreadCounts) {
  SuiteOptions options;
  options.records = 2048;
  std::vector<MatrixJob> jobs;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc,
        arch::ArchKind::kGpgpu}) {
    for (const std::string& bench : {std::string("count"),
                                     std::string("variance")}) {
      jobs.push_back({kind, bench, options, ""});
    }
  }
  const std::vector<MatrixResult> serial = run_matrix(jobs, 1);
  const std::vector<MatrixResult> parallel = run_matrix(jobs, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
    const arch::RunResult& a = serial[i].result;
    const arch::RunResult& b = parallel[i].result;
    EXPECT_EQ(a.arch, b.arch);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.runtime_ps, b.runtime_ps);
    EXPECT_EQ(a.compute_cycles, b.compute_cycles);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_DOUBLE_EQ(a.final_clock_mhz, b.final_clock_mhz);
    EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
    EXPECT_EQ(a.stats, b.stats);  // every counter, bit for bit
  }
}

// ---- job preparation cache -------------------------------------------------

TEST(Prepare, KeyIsArchitectureIndependent) {
  SuiteOptions options;
  options.records = 1024;
  // Preparation (layout, records, image, reference) depends only on the
  // data-side knobs, so all eight architectures share one cache entry.
  const std::string millipede_key =
      prepare_key({arch::ArchKind::kMillipede, "count", options, ""});
  for (const arch::ArchKind kind : arch::all_arch_kinds()) {
    EXPECT_EQ(prepare_key({kind, "count", options, ""}), millipede_key);
  }
  // Compute-side knobs don't split the key either.
  SuiteOptions tweaked = options;
  tweaked.cfg.core.cores = 64;
  tweaked.cfg.millipede.pf_entries = 4;
  tweaked.cfg.dram.bus_efficiency = 0.9;
  EXPECT_EQ(prepare_key({arch::ArchKind::kSsmc, "count", tweaked, ""}),
            millipede_key);
}

TEST(Prepare, KeySplitsOnDataRelevantFields) {
  SuiteOptions options;
  options.records = 1024;
  const MatrixJob base{arch::ArchKind::kMillipede, "count", options, ""};
  const std::string key = prepare_key(base);

  MatrixJob other = base;
  other.bench = "sample";
  EXPECT_NE(prepare_key(other), key);
  other = base;
  other.options.records = 2048;
  EXPECT_NE(prepare_key(other), key);
  other = base;
  other.options.seed = 2;
  EXPECT_NE(prepare_key(other), key);
  other = base;
  other.options.record_barrier = true;
  EXPECT_NE(prepare_key(other), key);
  other = base;
  other.options.cfg.slab_layout = true;
  EXPECT_NE(prepare_key(other), key);
}

TEST(Prepare, RowSizingAndExplicitRecordsShareAnEntry) {
  SuiteOptions by_rows;
  by_rows.rows = 48;
  const MatrixJob rows_job{arch::ArchKind::kMillipede, "count", by_rows, ""};

  SuiteOptions by_records;
  by_records.records = records_for("count", by_rows.cfg, 48);
  const MatrixJob records_job{arch::ArchKind::kMillipede, "count", by_records,
                              ""};
  EXPECT_EQ(prepare_key(rows_job), prepare_key(records_job));
}

TEST(Prepare, CacheCountsHitsMissesAndEvicts) {
  PrepareCache cache(/*max_entries=*/2);
  SuiteOptions options;
  options.records = 1024;
  const MatrixJob count{arch::ArchKind::kMillipede, "count", options, ""};
  const MatrixJob sample{arch::ArchKind::kMillipede, "sample", options, ""};
  const MatrixJob variance{arch::ArchKind::kSsmc, "variance", options, ""};

  bool hit = true;
  cache.get(count, &hit);
  EXPECT_FALSE(hit);
  cache.get(count, &hit);
  EXPECT_TRUE(hit);
  cache.get(sample, &hit);
  EXPECT_FALSE(hit);
  cache.get(variance, &hit);  // capacity 2: evicts LRU entry (count)
  EXPECT_FALSE(hit);

  PrepareCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_GT(stats.image_bytes, 0u);

  cache.get(count, &hit);  // evicted above: a miss again
  EXPECT_FALSE(hit);
  cache.get(variance, &hit);  // still resident
  EXPECT_TRUE(hit);
}

// Eviction accounting under contention: many threads walking more keys than
// the cache holds, so insertions, evictions, and lost same-key races (both
// threads prepare, the first insert wins, the loser's copy is dropped) all
// overlap. Whatever interleaving happens, the counters must stay consistent
// — in particular image_bytes, which is adjusted on BOTH the insert and the
// evict side of the same critical section.
TEST(Prepare, ConcurrentEvictionKeepsAccountingConsistent) {
  constexpr std::size_t kCapacity = 3;
  constexpr int kKeys = 8;
  constexpr int kThreads = 8;
  constexpr int kRoundsPerThread = 24;

  SuiteOptions options;
  options.records = 512;
  const auto job_for = [&options](int key) {
    SuiteOptions o = options;
    o.seed = static_cast<u64>(key + 1);  // seed splits the key, nothing else
    return MatrixJob{arch::ArchKind::kMillipede, "count", o, ""};
  };

  // Every key is the same benchmark at the same record count, so every
  // pristine image has ONE size; measure it on a singleton cache.
  u64 image_size = 0;
  {
    PrepareCache probe(/*max_entries=*/1);
    probe.get(job_for(0));
    image_size = probe.stats().image_bytes;
  }
  ASSERT_GT(image_size, 0u);

  PrepareCache cache(kCapacity);
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> futures;
    for (int t = 0; t < kThreads; ++t) {
      futures.push_back(pool.submit([&cache, &job_for, t] {
        for (int i = 0; i < kRoundsPerThread; ++i) {
          // Offset walks: threads chase each other across the key ring, so
          // same-key races and cross-key evictions both fire constantly.
          cache.get(job_for((t + i) % kKeys));
        }
      }));
    }
    for (auto& f : futures) f.get();
  }

  const PrepareCacheStats stats = cache.stats();
  // Every lookup was tallied exactly once, as either a hit or a miss.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<u64>(kThreads) * kRoundsPerThread);
  // More distinct keys than capacity: the cache ends exactly full, every
  // key missed at least once, and at least the overflow got evicted. Only
  // a miss can insert (and only an insert can evict), bounding evictions.
  EXPECT_EQ(stats.entries, kCapacity);
  EXPECT_GE(stats.misses, static_cast<u64>(kKeys));
  EXPECT_GE(stats.evictions, static_cast<u64>(kKeys) - kCapacity);
  EXPECT_LE(stats.evictions, stats.misses - stats.entries);
  // The corruption detector: with one image size everywhere, the byte tally
  // must be exactly entries × size — a double-counted lost race or an
  // eviction that forgot to subtract shows up here immediately.
  EXPECT_EQ(stats.image_bytes, kCapacity * image_size);
}

TEST(Prepare, CachedRunsAreBitIdenticalToUncached) {
  SuiteOptions options;
  options.records = 1024;
  std::vector<MatrixJob> jobs;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc}) {
    for (const std::string& bench :
         {std::string("count"), std::string("variance")}) {
      jobs.push_back({kind, bench, options, ""});
    }
  }
  for (const MatrixJob& job : jobs) {
    PrepareCache cache;
    bool hit = true;
    const MatrixResult cold = run_job(job);  // prepares from scratch
    const MatrixResult warm1 = run_job(job, &cache, &hit);
    EXPECT_FALSE(hit);  // first touch of a fresh cache
    const MatrixResult warm2 = run_job(job, &cache, &hit);
    EXPECT_TRUE(hit);
    // Byte-level equality of the full stats document: metrics, every
    // counter, and the config echo.
    EXPECT_EQ(stats_json_run(cold), stats_json_run(warm1));
    EXPECT_EQ(stats_json_run(cold), stats_json_run(warm2));
  }
}

TEST(Matrix, SharedCacheKeepsThreadCountDeterminism) {
  SuiteOptions options;
  options.records = 2048;
  std::vector<MatrixJob> jobs;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc,
        arch::ArchKind::kGpgpu, arch::ArchKind::kMulticore}) {
    for (const std::string& bench :
         {std::string("count"), std::string("variance")}) {
      jobs.push_back({kind, bench, options, ""});
    }
  }
  PrepareCache serial_cache;
  PrepareCache parallel_cache;
  const std::vector<MatrixResult> bare = run_matrix(jobs, 1);
  const std::vector<MatrixResult> serial = run_matrix(jobs, 1, &serial_cache);
  const std::vector<MatrixResult> parallel =
      run_matrix(jobs, 8, &parallel_cache);
  ASSERT_EQ(serial.size(), jobs.size());
  ASSERT_EQ(parallel.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(bare[i].ok()) << bare[i].error;
    // Cache on/off and 1-vs-8 threads: identical bytes either way.
    EXPECT_EQ(stats_json_run(bare[i]), stats_json_run(serial[i]));
    EXPECT_EQ(stats_json_run(bare[i]), stats_json_run(parallel[i]));
  }
  // Serially, the 4-arch × 2-bench matrix prepares each bench exactly once.
  const PrepareCacheStats stats = serial_cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 6u);
  // Concurrent same-key misses may both prepare (first insert wins), so the
  // parallel run only guarantees every lookup was answered.
  const PrepareCacheStats pstats = parallel_cache.stats();
  EXPECT_EQ(pstats.hits + pstats.misses, 8u);
  EXPECT_GE(pstats.misses, 2u);
}

TEST(Matrix, RunSuiteMatchesPerJobRuns) {
  SuiteOptions options;
  options.records = 1024;
  const std::vector<arch::RunResult> suite =
      run_suite(arch::ArchKind::kMillipede, options, 4);
  ASSERT_EQ(suite.size(), workloads::bmla_names().size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].workload, workloads::bmla_names()[i]);
    const arch::RunResult single = run_verified(
        arch::ArchKind::kMillipede, workloads::bmla_names()[i], options);
    EXPECT_EQ(suite[i].runtime_ps, single.runtime_ps);
  }
}

}  // namespace
}  // namespace mlp::sim
