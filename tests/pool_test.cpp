// Thread pool and parallel matrix harness tests: submission-order results,
// exception propagation through futures, failure collection, and the key
// harness guarantee — identical simulation results for any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/pool.hpp"
#include "sim/runner.hpp"

namespace mlp::sim {
namespace {

TEST(Pool, RunsEveryTaskAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(Pool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(Pool, ExceptionPropagatesToTheCaller) {
  ThreadPool pool(2);
  std::future<int> ok = pool.submit([] { return 7; });
  std::future<int> bad = pool.submit(
      []() -> int { throw std::runtime_error("kernel exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(Pool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(counter.load(), 32);
}

TEST(Matrix, ResultsComeBackInSubmissionOrder) {
  SuiteOptions options;
  options.records = 1024;
  std::vector<MatrixJob> jobs;
  const std::vector<std::string> order = {"variance", "count", "sample"};
  for (const std::string& bench : order) {
    jobs.push_back({arch::ArchKind::kMillipede, bench, options, bench});
  }
  const std::vector<MatrixResult> results = run_matrix(jobs, 3);
  ASSERT_EQ(results.size(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_TRUE(results[i].ok()) << results[i].error;
    EXPECT_EQ(results[i].job.tag, order[i]);
    EXPECT_EQ(results[i].result.workload, order[i]);
  }
}

TEST(Matrix, CollectsFailuresInsteadOfAborting) {
  SuiteOptions options;
  options.records = 1024;
  const std::vector<MatrixJob> jobs = {
      {arch::ArchKind::kMillipede, "count", options, ""},
      {arch::ArchKind::kMillipede, "no-such-bench", options, ""},
      {arch::ArchKind::kSsmc, "sample", options, ""},
  };
  const std::vector<MatrixResult> results = run_matrix(jobs, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("unknown benchmark"), std::string::npos);
  EXPECT_TRUE(results[2].ok());
}

// The harness's core guarantee: jobs share no mutable state, so thread
// count must not change a single bit of any result.
TEST(Matrix, DeterministicAcrossThreadCounts) {
  SuiteOptions options;
  options.records = 2048;
  std::vector<MatrixJob> jobs;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kMillipede, arch::ArchKind::kSsmc,
        arch::ArchKind::kGpgpu}) {
    for (const std::string& bench : {std::string("count"),
                                     std::string("variance")}) {
      jobs.push_back({kind, bench, options, ""});
    }
  }
  const std::vector<MatrixResult> serial = run_matrix(jobs, 1);
  const std::vector<MatrixResult> parallel = run_matrix(jobs, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
    const arch::RunResult& a = serial[i].result;
    const arch::RunResult& b = parallel[i].result;
    EXPECT_EQ(a.arch, b.arch);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.runtime_ps, b.runtime_ps);
    EXPECT_EQ(a.compute_cycles, b.compute_cycles);
    EXPECT_EQ(a.thread_instructions, b.thread_instructions);
    EXPECT_DOUBLE_EQ(a.final_clock_mhz, b.final_clock_mhz);
    EXPECT_DOUBLE_EQ(a.energy.total_j(), b.energy.total_j());
    EXPECT_EQ(a.stats, b.stats);  // every counter, bit for bit
  }
}

TEST(Matrix, RunSuiteMatchesPerJobRuns) {
  SuiteOptions options;
  options.records = 1024;
  const std::vector<arch::RunResult> suite =
      run_suite(arch::ArchKind::kMillipede, options, 4);
  ASSERT_EQ(suite.size(), workloads::bmla_names().size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].workload, workloads::bmla_names()[i]);
    const arch::RunResult single = run_verified(
        arch::ArchKind::kMillipede, workloads::bmla_names()[i], options);
    EXPECT_EQ(suite[i].runtime_ps, single.runtime_ps);
  }
}

}  // namespace
}  // namespace mlp::sim
