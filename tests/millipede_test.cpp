// Tests for Millipede's novel mechanisms: row-granularity prefetch, PFT
// trigger chaining, DF-counter flow control, premature eviction without flow
// control, partial tail rows, and DFS rate matching.

#include <gtest/gtest.h>

#include <optional>

#include "millipede/prefetch_buffer.hpp"

namespace mlp::millipede {
namespace {

/// Small geometry so tests can reason about exact rows and slabs:
/// 256 B rows, 4 corelets => 64 B slabs of 16 words each, 4-entry queue.
MachineConfig small_cfg() {
  MachineConfig cfg;
  cfg.dram.row_bytes = 256;
  cfg.dram.bus_efficiency = 1.0;
  cfg.core.cores = 4;
  cfg.gpgpu.warp_width = 4;
  cfg.millipede.pf_entries = 4;
  cfg.millipede.prime_rows = 3;  // tests reason about explicit prime depth
  cfg.validate();
  return cfg;
}

constexpr u64 kFullSlab = 0xffff;  // all 16 slab words expected

struct PbFixture : ::testing::Test {
  void make(u64 num_rows, bool flow_control = true,
            std::function<u64(u64, u32)> mask = nullptr) {
    cfg = small_cfg();
    cfg.millipede.flow_control = flow_control;
    ctrl = std::make_unique<mem::ChannelDemux>(cfg.dram, "dram", &stats);
    RowPlan plan;
    plan.first_row = 0;
    plan.num_rows = num_rows;
    plan.expected_mask = mask ? std::move(mask)
                              : [](u64, u32) -> u64 { return kFullSlab; };
    pb = std::make_unique<PrefetchBuffer>(cfg, plan, ctrl.get(), nullptr,
                                          &stats, "pb");
  }

  /// Advance DRAM time until the controller drains.
  void drain() {
    for (int i = 0; i < 100000 && !(ctrl->idle() && pb->quiescent()); ++i) {
      pb->pump(now);
      ctrl->tick(now);
      now += cfg.dram.period_ps();
    }
    ASSERT_TRUE(ctrl->idle());
  }

  /// Demand-fetch one word; returns the result.
  core::PortResult demand(u32 corelet, u64 row, u32 word,
                          std::function<void(Picos)> wakeup = nullptr) {
    const Addr addr = row * cfg.dram.row_bytes + corelet * 64 + word * 4;
    return pb->load(corelet, 0, addr, now, std::move(wakeup));
  }

  /// Consume an entire slab (all 16 words) for `corelet` on `row`.
  void consume_slab(u32 corelet, u64 row) {
    for (u32 w = 0; w < 16; ++w) {
      const auto result = demand(corelet, row, w);
      ASSERT_EQ(result.status, core::PortStatus::kDone)
          << "row " << row << " word " << w;
    }
  }

  MachineConfig cfg;
  StatSet stats;
  std::unique_ptr<mem::ChannelDemux> ctrl;
  std::unique_ptr<PrefetchBuffer> pb;
  Picos now = 0;
};

TEST_F(PbFixture, PrimeIssuesPrimeDepthRowPrefetches) {
  make(64);
  pb->prime(now);
  EXPECT_EQ(stats.get("pb.row_prefetches"), 3u);  // prime_rows default
  EXPECT_EQ(pb->occupancy(), 3u);
  drain();
  EXPECT_EQ(stats.get("dram.bytes"), 3u * 256u);
}

TEST_F(PbFixture, DemandAfterFillHits) {
  make(64);
  pb->prime(now);
  drain();
  const auto result = demand(0, 0, 0);
  EXPECT_EQ(result.status, core::PortStatus::kDone);
  EXPECT_GT(result.ready_at, now);
  EXPECT_EQ(stats.get("pb.hits"), 1u);
}

TEST_F(PbFixture, DemandBeforeFillWaitsForData) {
  make(64);
  pb->prime(now);  // prefetches issued but data not yet arrived
  std::optional<Picos> woke;
  const auto result = demand(0, 0, 0, [&](Picos at) { woke = at; });
  EXPECT_EQ(result.status, core::PortStatus::kPending);
  EXPECT_EQ(stats.get("pb.fill_waits"), 1u);
  drain();
  ASSERT_TRUE(woke.has_value());
  EXPECT_GT(*woke, 0u);
}

TEST_F(PbFixture, FirstDemandTriggersNextRowOnce) {
  make(64);
  pb->prime(now);  // rows 0..2 in flight
  drain();
  // The first demand access to row 0 (PFT set) allocates row 3.
  demand(0, 0, 0);
  EXPECT_EQ(stats.get("pb.row_prefetches"), 4u);
  EXPECT_EQ(pb->occupancy(), 4u);
  // Later accesses to row 0 must not re-trigger (PFT cleared).
  demand(1, 0, 0);
  demand(2, 0, 0);
  demand(0, 0, 1);
  EXPECT_EQ(stats.get("pb.row_prefetches"), 4u)
      << "only the first access to an entry may trigger";
  // First access to row 1 wants row 4, but the queue is full and the head
  // is unsaturated: with flow control the trigger is deferred.
  demand(0, 1, 0);
  EXPECT_EQ(stats.get("pb.row_prefetches"), 4u);
  // Consuming row 0 retires the head and releases the deferred trigger.
  for (u32 c = 0; c < 4; ++c) consume_slab(c, 0);
  EXPECT_EQ(stats.get("pb.row_prefetches"), 5u);
}

TEST_F(PbFixture, FlowControlBlocksLeadingCorelet) {
  make(64);
  pb->prime(now);
  drain();
  // Corelet 0 races ahead: consumes its slab of rows 0..3 (draining between
  // rows so triggered prefetches arrive), then demands row 4 which cannot be
  // allocated (queue full, head unsaturated).
  for (u64 r = 0; r < 4; ++r) {
    consume_slab(0, r);
    drain();
  }
  std::optional<Picos> woke;
  const auto result = demand(0, 4, 0, [&](Picos at) { woke = at; });
  EXPECT_EQ(result.status, core::PortStatus::kPending);
  EXPECT_EQ(stats.get("pb.flow_waits"), 1u);
  EXPECT_EQ(stats.get("pb.premature_evictions"), 0u);
  drain();
  EXPECT_FALSE(woke.has_value()) << "still blocked: laggards not done";
  // Laggards consume row 0: head retires, row 4 allocated and fetched.
  for (u32 c = 1; c < 4; ++c) consume_slab(c, 0);
  drain();
  ASSERT_TRUE(woke.has_value()) << "flow-control wait must end after retire";
}

TEST_F(PbFixture, NoFlowControlEvictsPrematurelyAndDirectFetches) {
  make(64, /*flow_control=*/false);
  pb->prime(now);
  drain();
  // Corelet 0 races ahead through the whole window; ordinary triggers defer
  // just like flow control (evictions must be infrequent, Section IV-C)...
  for (u64 r = 0; r < 4; ++r) {
    consume_slab(0, r);
    drain();
  }
  EXPECT_EQ(stats.get("pb.premature_evictions"), 0u);
  // ...but when its demand WRAPS past the window, the unsaturated head is
  // prematurely re-allocated to satisfy it.
  std::optional<Picos> lead_woke;
  EXPECT_EQ(demand(0, 4, 0, [&](Picos at) { lead_woke = at; }).status,
            core::PortStatus::kPending);
  drain();
  EXPECT_GT(stats.get("pb.premature_evictions"), 0u);
  EXPECT_TRUE(lead_woke.has_value()) << "wrapped demand must be satisfied";
  // A lagging corelet now demands the evicted row 0: one direct DRAM fetch
  // for its slab, deduplicated for subsequent words.
  std::optional<Picos> woke;
  const auto result = demand(1, 0, 0, [&](Picos at) { woke = at; });
  EXPECT_EQ(result.status, core::PortStatus::kPending);
  EXPECT_EQ(stats.get("pb.direct_fetches"), 1u);
  demand(1, 0, 1, [](Picos) {});
  EXPECT_EQ(stats.get("pb.direct_fetches"), 1u) << "victim slab deduplicates";
  drain();
  EXPECT_TRUE(woke.has_value());
}

TEST_F(PbFixture, FlowControlNeverEvictsPrematurely) {
  make(16);
  pb->prime(now);
  drain();
  // Interleave: every corelet consumes every row in order.
  for (u64 r = 0; r < 16; ++r) {
    for (u32 c = 0; c < 4; ++c) consume_slab(c, r);
    drain();
  }
  EXPECT_EQ(stats.get("pb.premature_evictions"), 0u);
  EXPECT_EQ(stats.get("pb.direct_fetches"), 0u);
  EXPECT_EQ(stats.get("pb.row_prefetches"), 16u);
  EXPECT_EQ(stats.get("dram.row_misses") + stats.get("dram.row_hits"), 16u)
      << "exactly one DRAM row access per row: full row locality";
}

TEST_F(PbFixture, PartialTailRowDoesNotDeadlock) {
  // Last row only expects corelet 0's first 4 words; others expect nothing.
  make(5, true, [](u64 row, u32 corelet) -> u64 {
    if (row < 4) return kFullSlab;
    return corelet == 0 ? 0xf : 0;
  });
  pb->prime(now);
  drain();
  for (u64 r = 0; r < 4; ++r) {
    for (u32 c = 0; c < 4; ++c) consume_slab(c, r);
    drain();
  }
  // Row 4: only corelet 0 touches 4 words; must complete and retire.
  for (u32 w = 0; w < 4; ++w) {
    EXPECT_EQ(demand(0, 4, w).status, core::PortStatus::kDone);
  }
  drain();
  EXPECT_EQ(pb->occupancy(), 0u) << "tail row retired despite partial use";
}

TEST_F(PbFixture, RepeatedWordAccessDoesNotDoubleCount) {
  make(8);
  pb->prime(now);
  drain();
  for (u32 i = 0; i < 3; ++i) demand(0, 0, 5);
  // Consume everything; retirement must still require the full masks.
  for (u32 c = 0; c < 4; ++c) consume_slab(c, 0);
  drain();
  EXPECT_EQ(stats.get("pb.premature_evictions"), 0u);
  EXPECT_EQ(pb->occupancy(), 3u);  // row 0 retired; rows 1..3 resident
}

TEST_F(PbFixture, ForeignSlabAccessAborts) {
  make(8);
  pb->prime(now);
  drain();
  // Corelet 2 reaching into corelet 0's slab violates the interconnect.
  EXPECT_DEATH(pb->load(2, 0, /*addr=*/0, now, nullptr), "foreign slab");
}

TEST_F(PbFixture, SequentialRowStreamKeepsRowLocality) {
  make(32);
  pb->prime(now);
  drain();
  for (u64 r = 0; r < 32; ++r) {
    for (u32 c = 0; c < 4; ++c) consume_slab(c, r);
    drain();
  }
  // 32 row fetches, 4 banks: every fetch opens a fresh row exactly once.
  EXPECT_EQ(stats.get("dram.row_misses"), 32u);
  EXPECT_EQ(stats.get("dram.row_hits"), 0u);
  EXPECT_EQ(stats.get("dram.bytes"), 32u * 256u);
}

// --- RateMatcher ---

struct RateFixture : ::testing::Test {
  RateFixture() {
    cfg = MachineConfig::paper_defaults();
    cfg.millipede.rate_window = 8;
    clock = ClockDomain(cfg.core.period_ps());
    matcher = std::make_unique<RateMatcher>(cfg.millipede, cfg.core, &clock,
                                            &stats, "rate");
  }

  MachineConfig cfg;
  StatSet stats;
  ClockDomain clock;
  std::unique_ptr<RateMatcher> matcher;
};

TEST_F(RateFixture, MemoryBoundVotesLowerTheClock) {
  const double before = matcher->current_mhz();
  for (int i = 0; i < 8; ++i) matcher->vote_memory_bound();
  EXPECT_LT(matcher->current_mhz(), before);
  EXPECT_NEAR(matcher->current_mhz(), before * 0.95, 2.0);
  EXPECT_EQ(stats.get("rate.steps_down"), 1u);
}

TEST_F(RateFixture, ComputeBoundVotesCappedAtNominal) {
  for (int i = 0; i < 8; ++i) matcher->vote_compute_bound();
  EXPECT_NEAR(matcher->current_mhz(), 700.0, 1.0) << "cannot exceed nominal";
  EXPECT_EQ(stats.get("rate.steps_up"), 0u);
}

TEST_F(RateFixture, ConvergesToEquilibrium) {
  // 60% memory votes: clock walks down until ... votes flip (simulated by
  // flipping the majority once the clock is 20% lower).
  for (int round = 0; round < 200; ++round) {
    const bool memory_bound = matcher->current_mhz() > 560.0;
    for (int i = 0; i < 8; ++i) {
      if (memory_bound) {
        matcher->vote_memory_bound();
      } else {
        matcher->vote_compute_bound();
      }
    }
  }
  EXPECT_NEAR(matcher->current_mhz(), 560.0, 560.0 * 0.06)
      << "oscillates within one step of equilibrium";
}

TEST_F(RateFixture, ClockFlooredAtMinimum) {
  for (int round = 0; round < 2000; ++round) matcher->vote_memory_bound();
  EXPECT_GE(matcher->current_mhz(), cfg.millipede.min_clock_mhz * 0.99);
}

TEST_F(RateFixture, StepsDownOnlyOnNearUnanimousMemoryVotes) {
  // 5 memory + 3 compute: held (memory not near-unanimous, but the compute
  // votes push back up — already at nominal, so nothing changes).
  for (int i = 0; i < 5; ++i) matcher->vote_memory_bound();
  for (int i = 0; i < 3; ++i) matcher->vote_compute_bound();
  EXPECT_EQ(stats.get("rate.steps_down"), 0u);
  EXPECT_NEAR(matcher->current_mhz(), 700.0, 1.0);
  // Unanimous memory window: steps down.
  for (int i = 0; i < 8; ++i) matcher->vote_memory_bound();
  EXPECT_EQ(stats.get("rate.steps_down"), 1u);
  const double dipped = matcher->current_mhz();
  EXPECT_LT(dipped, 699.0);
  // A couple of early rows (compute-bound signals) step back up.
  for (int i = 0; i < 6; ++i) matcher->vote_memory_bound();
  for (int i = 0; i < 2; ++i) matcher->vote_compute_bound();
  EXPECT_GT(matcher->current_mhz(), dipped);
}

}  // namespace
}  // namespace mlp::millipede
