// Workload tests: interleaved layout geometry, thread slicing, expected
// slab masks, and — most importantly — functional correctness of every BMLA
// kernel against its host golden reference (parameterized over the suite),
// including tail-group handling and the reduce/compare machinery.

#include <gtest/gtest.h>

#include <set>

#include "workloads/binding.hpp"
#include "workloads/bmla.hpp"

namespace mlp::workloads {
namespace {

// --- Layout ---

TEST(Layout, AddressGeometry) {
  InterleavedLayout layout(2048, /*fields=*/3, /*records=*/2000);
  EXPECT_EQ(layout.group_records(), 512u);
  EXPECT_EQ(layout.num_groups(), 4u);  // ceil(2000/512)
  EXPECT_EQ(layout.num_rows(), 12u);
  EXPECT_EQ(layout.total_bytes(), 12u * 2048u);
  // Field f of record r: row g*F+f, word idx.
  EXPECT_EQ(layout.address(0, 0), 0u);
  EXPECT_EQ(layout.address(1, 0), 2048u);
  EXPECT_EQ(layout.address(0, 1), 4u);
  EXPECT_EQ(layout.address(0, 512), 3u * 2048u);    // group 1, field 0
  EXPECT_EQ(layout.address(2, 513), 5u * 2048u + 4u);
}

TEST(Layout, AllAddressesDistinctAndInBounds) {
  InterleavedLayout layout(512, 2, 300);
  std::set<Addr> seen;
  for (u64 r = 0; r < 300; ++r) {
    for (u32 f = 0; f < 2; ++f) {
      const Addr a = layout.address(f, r);
      EXPECT_LT(a + 4, layout.total_bytes() + 1);
      EXPECT_TRUE(seen.insert(a).second) << "duplicate address";
    }
  }
}

TEST(Layout, SameFieldOfConsecutiveRecordsIsContiguous) {
  InterleavedLayout layout(2048, 4, 5000);
  for (u64 r = 0; r + 1 < 512; ++r) {
    EXPECT_EQ(layout.address(2, r + 1), layout.address(2, r) + 4);
  }
}

TEST(Layout, SlabSliceCoversGroupExactlyOnce) {
  InterleavedLayout layout(2048, 1, 4096);
  const u32 cores = 32, contexts = 4;
  std::vector<int> owners(512, 0);
  for (u32 c = 0; c < cores; ++c) {
    for (u32 x = 0; x < contexts; ++x) {
      const ThreadSlice s = layout.slice(ThreadMapping::kSlab, cores,
                                         contexts, c, x);
      EXPECT_EQ(s.rpt, 4u);
      EXPECT_EQ(s.idx_stride, 1u);
      for (u32 j = 0; j < s.rpt; ++j) ++owners[s.idx_base + j * s.idx_stride];
      // The slab discipline: corelet c's records live in its 64 B slab.
      EXPECT_EQ(s.idx_base / 16, c);
    }
  }
  for (int owner : owners) EXPECT_EQ(owner, 1);
}

TEST(Layout, WordInterleavedSliceCoalesces) {
  InterleavedLayout layout(2048, 1, 4096);
  // 32 lanes, 4 warps: warp wi, lane l -> idx wi*32 + l + j*128.
  const u32 warps = 4, width = 32;
  std::vector<int> owners(512, 0);
  for (u32 w = 0; w < warps; ++w) {
    for (u32 l = 0; l < width; ++l) {
      const ThreadSlice s = layout.slice(ThreadMapping::kWordInterleaved, 32,
                                         4, w, l, width);
      EXPECT_EQ(s.rpt, 4u);
      EXPECT_EQ(s.idx_stride, 128u);
      for (u32 j = 0; j < s.rpt; ++j) ++owners[s.idx_base + j * s.idx_stride];
    }
  }
  for (int owner : owners) EXPECT_EQ(owner, 1);
  // Lanes of one warp own consecutive records (coalescing).
  const ThreadSlice a = layout.slice(ThreadMapping::kWordInterleaved, 32, 4,
                                     1, 5, width);
  const ThreadSlice b = layout.slice(ThreadMapping::kWordInterleaved, 32, 4,
                                     1, 6, width);
  EXPECT_EQ(b.idx_base, a.idx_base + 1);
}

TEST(Layout, ExpectedSlabMaskFullAndPartial) {
  // 600 records, 512-record groups: group 1 holds records 512..599.
  InterleavedLayout layout(2048, 2, 600);
  const u32 cores = 32;  // 16-word slabs
  // Group 0: every corelet's slab fully used.
  for (u32 c = 0; c < cores; ++c) {
    EXPECT_EQ(layout.expected_slab_mask(0, c, cores), 0xffffu);
    EXPECT_EQ(layout.expected_slab_mask(1, c, cores), 0xffffu);
  }
  // Group 1 (rows 2,3): corelets 0..4 fully used (records 512..591),
  // corelet 5 holds records 592..607 -> only 8 valid, rest empty.
  EXPECT_EQ(layout.expected_slab_mask(2, 4, cores), 0xffffu);
  EXPECT_EQ(layout.expected_slab_mask(2, 5, cores), 0x00ffu);
  EXPECT_EQ(layout.expected_slab_mask(2, 6, cores), 0u);
  EXPECT_EQ(layout.expected_slab_mask(3, 31, cores), 0u);
}

// --- Result comparison machinery ---

TEST(Compare, AcceptsWithinTolerance) {
  EXPECT_EQ(compare_results({1.0, 100.0}, {1.0, 100.01}, 1e-3), "");
}

TEST(Compare, RejectsOutsideTolerance) {
  EXPECT_NE(compare_results({1.0}, {1.5}, 1e-3), "");
  EXPECT_NE(compare_results({1.0}, {1.0, 2.0}, 1e-3), "");
}

TEST(Reduce, SumsAcrossStatesBySchema) {
  Workload wl;
  wl.state_schema = {{"ints", 0, 2, 1, false}, {"floats", 2, 1, 1, true}};
  mem::LocalStore a(16), b(16);
  a.store(0, 3);
  b.store(0, 4);
  a.store(4, static_cast<u32>(-2));  // signed int handling
  b.store(4, 10);
  a.store_f32(8, 1.5f);
  b.store_f32(8, 2.5f);
  const auto out = reduce_state(wl, {&a, &b});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 7.0);
  EXPECT_DOUBLE_EQ(out[1], 8.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
}

// --- Kernel functional correctness vs golden reference ---

class KernelGolden : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelGolden, FunctionalRunMatchesReference) {
  WorkloadParams params;
  params.num_records = 2000;  // not a multiple of 512: exercises tail guard
  params.seed = 99;
  Workload wl = make_bmla(GetParam(), params);

  FunctionalResult result =
      run_functional(wl, /*cores=*/4, /*contexts=*/2, /*row_bytes=*/2048,
                     /*local_mem_bytes=*/4096, /*seed=*/7);

  // Rebuild the same image for the reference.
  InterleavedLayout layout(2048, wl.fields, wl.num_records);
  mem::DramImage image(layout.total_bytes());
  Rng rng(7);
  wl.generate(layout, image, rng);

  const auto reference = wl.reference(image, layout);
  const auto measured = reduce_state(wl, result.state_ptrs());
  EXPECT_EQ(compare_results(reference, measured, wl.tolerance), "")
      << wl.name;

  // Row-density contract: every input word is loaded exactly once.
  EXPECT_EQ(result.global_loads, wl.num_records * wl.fields);
}

INSTANTIATE_TEST_SUITE_P(AllBmla, KernelGolden,
                         ::testing::ValuesIn(bmla_names()),
                         [](const auto& info) { return info.param; });

TEST(KernelGolden, RecordCountExactMultipleOfGroup) {
  WorkloadParams params;
  params.num_records = 1024;  // exactly two groups
  Workload wl = make_bmla("nbayes", params);
  FunctionalResult result = run_functional(wl, 4, 2, 2048, 4096, 3);
  InterleavedLayout layout(2048, wl.fields, wl.num_records);
  mem::DramImage image(layout.total_bytes());
  Rng rng(3);
  wl.generate(layout, image, rng);
  EXPECT_EQ(compare_results(wl.reference(image, layout),
                            reduce_state(wl, result.state_ptrs()),
                            wl.tolerance),
            "");
}

TEST(KernelGolden, TinyRecordCount) {
  WorkloadParams params;
  params.num_records = 17;  // far fewer records than threads own slots
  Workload wl = make_bmla("count", params);
  FunctionalResult result = run_functional(wl, 4, 2, 2048, 4096, 11);
  InterleavedLayout layout(2048, wl.fields, wl.num_records);
  mem::DramImage image(layout.total_bytes());
  Rng rng(11);
  wl.generate(layout, image, rng);
  EXPECT_EQ(compare_results(wl.reference(image, layout),
                            reduce_state(wl, result.state_ptrs()),
                            wl.tolerance),
            "");
}

TEST(KernelProperties, SampleSlotsHoldMembersOfTheBin) {
  WorkloadParams params;
  params.num_records = 3000;
  Workload wl = make_bmla("sample", params);
  FunctionalResult result = run_functional(wl, 4, 2, 2048, 4096, 5);
  InterleavedLayout layout(2048, wl.fields, wl.num_records);
  mem::DramImage image(layout.total_bytes());
  Rng rng(5);
  wl.generate(layout, image, rng);

  for (const mem::LocalStore& state : result.states) {
    for (u32 bin = 0; bin < kSampleBins; ++bin) {
      const u32 count = state.load(bin * 16);
      const u32 stored = std::min(count, kSampleSlots);
      for (u32 s = 0; s < stored; ++s) {
        const u32 record = state.load(bin * 16 + 4 + s * 4);
        ASSERT_LT(record, wl.num_records);
        EXPECT_EQ(image.read_u32(layout.address(0, record)), bin)
            << "stored element belongs to a different bin";
      }
    }
  }
}

TEST(KernelProperties, BranchSplitsRoughly70_30) {
  // The engineered data-dependent branches (count filter, nbayes class,
  // variance filter) should be taken/not-taken in a ~70/30 mix overall;
  // the loop/guard branches push the aggregate around, so just check the
  // per-kernel data-dependent rates via reference-side accounting.
  WorkloadParams params;
  params.num_records = 20000;
  for (const char* name : {"count", "variance", "nbayes"}) {
    Workload wl = make_bmla(name, params);
    InterleavedLayout layout(2048, wl.fields, wl.num_records);
    mem::DramImage image(layout.total_bytes());
    Rng rng(21);
    wl.generate(layout, image, rng);
    // Fraction of records passing the 70% side.
    double pass = 0;
    for (u64 r = 0; r < wl.num_records; ++r) {
      if (std::string(name) == "count") {
        pass += image.read_u32(layout.address(0, r)) < 11 ? 1 : 0;
      } else if (std::string(name) == "variance") {
        pass += image.read_f32(layout.address(0, r)) < 7.0f ? 1 : 0;
      } else {
        pass += image.read_u32(layout.address(0, r)) <= 69 ? 1 : 0;
      }
    }
    EXPECT_NEAR(pass / static_cast<double>(wl.num_records), 0.7, 0.03)
        << name;
  }
}

TEST(KernelProperties, InstructionMixOrdering) {
  // Dynamic instructions per input word must be monotone enough to sort the
  // suite the way the paper's Table IV does: the centroid kernels well above
  // the streaming kernels, pca/gda heaviest.
  WorkloadParams params;
  params.num_records = 2048;
  auto per_word = [&](const std::string& name) {
    Workload wl = make_bmla(name, params);
    FunctionalResult r = run_functional(wl, 4, 2, 2048, 4096, 9);
    return static_cast<double>(r.instructions) /
           static_cast<double>(wl.num_records * wl.fields);
  };
  const double count = per_word("count");
  const double classify = per_word("classify");
  const double kmeans = per_word("kmeans");
  const double pca = per_word("pca");
  const double gda = per_word("gda");
  EXPECT_LT(count, 20.0);
  EXPECT_GT(classify, 2.0 * count);
  EXPECT_GT(kmeans, classify);
  EXPECT_GT(pca, kmeans);
  EXPECT_GT(gda, 50.0);
}

TEST(KernelProperties, ProgramsFitTheICache) {
  WorkloadParams params;
  for (const std::string& name : bmla_names()) {
    Workload wl = make_bmla(name, params);
    EXPECT_LE(wl.program.size_bytes(), 4096u) << name << " exceeds 4 KB";
  }
}

TEST(KernelProperties, LiveStateFitsLocalMemory) {
  WorkloadParams params;
  for (const std::string& name : bmla_names()) {
    Workload wl = make_bmla(name, params);
    u32 max_word = 0;
    for (const StateField& field : wl.state_schema) {
      max_word = std::max(
          max_word, field.offset_words + field.count * field.stride_words);
    }
    EXPECT_LE(max_word * 4, 4096u) << name << " state exceeds 4 KB";
  }
}

}  // namespace
}  // namespace mlp::workloads
