// Tests for the common substrate: units, RNG determinism and distribution
// sanity, stats registry, clock domains, table rendering, config validation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.hpp"
#include "common/config.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace mlp {
namespace {

TEST(Units, PeriodFromFrequency) {
  EXPECT_EQ(period_ps_from_hz(1e9), 1000u);
  EXPECT_EQ(period_ps_from_hz(700e6), 1429u);  // 700 MHz compute clock
  EXPECT_EQ(period_ps_from_hz(1.2e9), 833u);   // 1.2 GHz channel clock
}

TEST(Units, RoundTripFrequency) {
  const Picos p = period_ps_from_hz(700e6);
  EXPECT_NEAR(mhz_from_period_ps(p), 700.0, 0.5);
}

TEST(Units, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2048));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(log2_exact(2048), 11u);
  EXPECT_EQ(log2_exact(1), 0u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ZipfIsSkewedTowardSmallValues) {
  Rng rng(13);
  int low = 0, high = 0;
  for (int i = 0; i < 4000; ++i) {
    const u64 z = rng.zipf(64, 1.0);
    EXPECT_LT(z, 64u);
    if (z < 8) ++low;
    if (z >= 56) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(Stats, RegisterAndSnapshot) {
  Counter hits, misses;
  StatSet set;
  set.add("cache.hits", &hits);
  set.add("cache.misses", &misses);
  hits.inc(3);
  misses.inc();
  EXPECT_EQ(set.get("cache.hits"), 3u);
  EXPECT_EQ(set.get("cache.misses"), 1u);
  EXPECT_TRUE(set.has("cache.hits"));
  EXPECT_FALSE(set.has("cache.evictions"));
  const auto snap = set.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "cache.hits");  // sorted order
}

TEST(Stats, ScalarRegistration) {
  double mhz = 544.0;
  StatSet set;
  set.add_scalar("clock.mhz", &mhz);
  EXPECT_DOUBLE_EQ(set.get_scalar("clock.mhz"), 544.0);
  mhz = 625.0;
  EXPECT_DOUBLE_EQ(set.get_scalar("clock.mhz"), 625.0);
}

TEST(Stats, MissingCounterThrowsRecoverableError) {
  // A typo'd counter name must surface as a per-job SimError (kind
  // "stat-missing"), not an abort: sweep pools recover from it.
  StatSet set;
  EXPECT_THROW(set.get("no.such.counter"), SimError);
  EXPECT_THROW(set.get_scalar("no.such.scalar"), SimError);
  try {
    set.get("dram.row_hits");
    FAIL() << "missing counter must throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "stat-missing");
    EXPECT_NE(std::string(e.what()).find("dram.row_hits"),
              std::string::npos);
  }
}

TEST(Stats, DuplicateRegistrationThrows) {
  Counter a, b;
  double s = 0.0, t = 0.0;
  StatSet set;
  set.add("cache.hits", &a);
  set.add_scalar("clock.mhz", &s);
  try {
    set.add("cache.hits", &b);
    FAIL() << "duplicate counter must throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "stat-duplicate");
    EXPECT_NE(std::string(e.what()).find("cache.hits"), std::string::npos);
  }
  EXPECT_THROW(set.add_scalar("clock.mhz", &t), SimError);
  // The original registrations survive the rejected duplicates.
  a.inc(2);
  EXPECT_EQ(set.get("cache.hits"), 2u);
  EXPECT_DOUBLE_EQ(set.get_scalar("clock.mhz"), 0.0);
}

TEST(Stats, ToStringListsCountersAndScalars) {
  Counter a;
  double s = 700.0;
  StatSet set;
  set.add("cache.hits", &a);
  set.add_scalar("clock.mhz", &s);
  a.inc(5);
  const std::string text = set.to_string();
  EXPECT_NE(text.find("cache.hits = 5"), std::string::npos);
  EXPECT_NE(text.find("clock.mhz = 700"), std::string::npos);
}

TEST(Clock, AdvancesByPeriod) {
  ClockDomain clock(1429);
  EXPECT_EQ(clock.next_edge_ps(), 0u);
  clock.advance();
  EXPECT_EQ(clock.next_edge_ps(), 1429u);
  EXPECT_EQ(clock.ticks(), 1u);
  clock.advance();
  EXPECT_EQ(clock.next_edge_ps(), 2858u);
}

TEST(Clock, DfsChangesFuturePeriodsOnly) {
  ClockDomain clock(1000);
  clock.advance();  // next edge at 1000
  clock.set_period_ps(2000);
  EXPECT_EQ(clock.next_edge_ps(), 1000u);  // pending edge unchanged
  clock.advance();
  EXPECT_EQ(clock.next_edge_ps(), 3000u);  // new period applied
}

TEST(Clock, TwoDomainInterleaving) {
  // 700 MHz compute vs 1.2 GHz channel: over 1 us the channel must tick
  // ~1.714x as often as the compute domain.
  ClockDomain compute(period_ps_from_hz(700e6));
  ClockDomain channel(period_ps_from_hz(1.2e9));
  const Picos horizon = 1'000'000;  // 1 us
  while (true) {
    ClockDomain& next =
        compute.next_edge_ps() <= channel.next_edge_ps() ? compute : channel;
    if (next.next_edge_ps() >= horizon) break;
    next.advance();
  }
  EXPECT_NEAR(static_cast<double>(channel.ticks()) / compute.ticks(),
              1.2e9 / 700e6, 0.01);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table t("Demo");
  t.set_columns({"bench", "speedup"});
  t.add_row();
  t.cell(std::string("count"));
  t.cell(2.35, 2);
  t.add_row();
  t.cell(std::string("nbayes"));
  t.cell(u64{7});
  const std::string text = t.to_string();
  EXPECT_NE(text.find("Demo"), std::string::npos);
  EXPECT_NE(text.find("count"), std::string::npos);
  EXPECT_NE(text.find("2.35"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("bench,speedup"), std::string::npos);
  EXPECT_NE(csv.find("nbayes,7"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Config, PaperDefaultsValidate) {
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.validate();  // must not abort
  EXPECT_EQ(cfg.core.cores, 32u);
  EXPECT_EQ(cfg.core.contexts, 4u);
  EXPECT_EQ(cfg.dram.row_bytes, 2048u);
  EXPECT_EQ(cfg.millipede.pf_entries, 16u);
  EXPECT_NEAR(cfg.dram.peak_gbps(), 19.2, 0.01);
}

TEST(Config, SystemSizeSweepValidates) {
  // The Fig. 6 sweep doubles cores; slab math must keep working.
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.core.cores = 64;
  cfg.validate();
  EXPECT_EQ(cfg.dram.row_bytes / cfg.core.cores, 32u);  // 32 B slabs
}

TEST(ConfigDeathTest, RejectsNonPow2Row) {
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.dram.row_bytes = 1500;
  EXPECT_THROW(cfg.validate(), SimError);
}

TEST(ConfigDeathTest, RejectsBadWarpWidth) {
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.gpgpu.warp_width = 5;
  EXPECT_THROW(cfg.validate(), SimError);
}

TEST(Config, RejectsBadFaultRates) {
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.dram.fault.bit_flip_rate = 1.5;
  EXPECT_THROW(cfg.validate(), SimError);
  cfg.dram.fault.bit_flip_rate = 1e-6;
  cfg.dram.fault.max_retries = 0;
  EXPECT_THROW(cfg.validate(), SimError);
  cfg.dram.fault.max_retries = 3;
  cfg.validate();  // sane fault config passes
}

TEST(Config, SimErrorCarriesKindAndDiagnostic) {
  try {
    throw SimError("watchdog", "stuck", "dump line\n");
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "watchdog");
    EXPECT_STREQ(e.what(), "watchdog: stuck");
    EXPECT_EQ(e.diagnostic(), "dump line\n");
  }
}

}  // namespace
}  // namespace mlp
