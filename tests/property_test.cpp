// Randomized property tests over module invariants:
//  * every encodable instruction round-trips through encode/decode and
//    through the disassembler+assembler;
//  * the interleaved layout is a bijection and thread slices partition it;
//  * the DRAM controller completes every accepted request exactly once and
//    conserves bytes;
//  * the SIMT stack executes exactly the instruction sequence each lane
//    would execute alone (lockstep-with-masking correctness) on randomly
//    generated branchy programs.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/functional.hpp"
#include "gpgpu/simt_stack.hpp"
#include "isa/assembler.hpp"
#include "isa/cfg.hpp"
#include "isa/disassembler.hpp"
#include "isa/encoding.hpp"
#include "mem/addrmap.hpp"
#include "mem/channels.hpp"
#include "workloads/layout.hpp"

namespace mlp {
namespace {

// --- Random instruction round trips ---

isa::Instr random_instr(Rng& rng) {
  while (true) {
    const auto op = static_cast<isa::Opcode>(rng.below(isa::kNumOpcodes));
    isa::Instr in;
    in.op = op;
    in.rd = static_cast<u8>(rng.below(32));
    in.rs1 = static_cast<u8>(rng.below(32));
    in.rs2 = static_cast<u8>(rng.below(32));
    switch (isa::op_info(op).format) {
      case isa::Format::kR:
        break;
      case isa::Format::kRu:
        in.rs2 = 0;
        break;
      case isa::Format::kI:
      case isa::Format::kL:
        in.rs2 = 0;
        in.imm = static_cast<i32>(rng.below(1 << 14)) - (1 << 13);
        break;
      case isa::Format::kS:
      case isa::Format::kB:
        in.rd = 0;
        in.imm = static_cast<i32>(rng.below(1 << 14)) - (1 << 13);
        break;
      case isa::Format::kA:
        in.imm = static_cast<i32>(rng.below(1 << 9)) - (1 << 8);
        break;
      case isa::Format::kJ:
        in.rs1 = in.rs2 = 0;
        in.imm = static_cast<i32>(rng.below(1 << 19)) - (1 << 18);
        break;
      case isa::Format::kU:
        in.rs1 = in.rs2 = 0;
        in.imm = static_cast<i32>(rng.below(1 << 19));
        break;
      case isa::Format::kC:
        in.rs1 = in.rs2 = 0;
        in.imm = static_cast<i32>(rng.below(15));  // valid CSR ids
        break;
      case isa::Format::kN:
        in.rd = in.rs1 = in.rs2 = 0;
        break;
    }
    return in;
  }
}

TEST(Property, EncodingRoundTripsRandomInstructions) {
  Rng rng(101);
  for (int i = 0; i < 5000; ++i) {
    const isa::Instr in = random_instr(rng);
    EXPECT_EQ(isa::decode(isa::encode(in)), in) << isa::disassemble(in);
  }
}

TEST(Property, DisassemblerAssemblerRoundTrip) {
  Rng rng(202);
  for (int round = 0; round < 50; ++round) {
    std::string source;
    std::vector<isa::Instr> instrs;
    for (int i = 0; i < 30; ++i) {
      isa::Instr in = random_instr(rng);
      // Branch/jump offsets must stay inside the program for the assembler.
      if (isa::op_info(in.op).is_branch || in.op == isa::Opcode::kJal) {
        in.imm = static_cast<i32>(rng.below(5)) - 2;
      }
      if (in.op == isa::Opcode::kHalt) continue;  // keep the program linear
      instrs.push_back(in);
      source += isa::disassemble(in) + "\n";
    }
    source += "halt\n";
    const isa::AsmResult result = isa::assemble("prop", source);
    ASSERT_TRUE(result.ok) << result.error << "\n" << source;
    for (size_t i = 0; i < instrs.size(); ++i) {
      EXPECT_EQ(isa::encode(result.program.at(static_cast<u32>(i))),
                isa::encode(instrs[i]));
    }
  }
}

// --- Layout bijectivity / partition, randomized geometry ---

TEST(Property, LayoutBijectionAndSlicePartition) {
  Rng rng(303);
  for (int round = 0; round < 20; ++round) {
    const u32 row_bytes = 256u << rng.below(4);  // 256..2048
    const u32 fields = 1 + static_cast<u32>(rng.below(9));
    const u64 records = 100 + rng.below(3000);
    workloads::InterleavedLayout layout(row_bytes, fields, records);

    std::set<Addr> seen;
    for (u64 r = 0; r < records; ++r) {
      for (u32 f = 0; f < fields; ++f) {
        ASSERT_TRUE(seen.insert(layout.address(f, r)).second);
      }
    }

    // Thread slices partition every group exactly once.
    const u32 cores = 4u << rng.below(2);  // 4 or 8
    const u32 contexts = layout.group_records() / cores >= 4 ? 4 : 1;
    if ((layout.group_records() / cores) % contexts != 0) continue;
    std::vector<int> owners(layout.group_records(), 0);
    for (u32 c = 0; c < cores; ++c) {
      for (u32 x = 0; x < contexts; ++x) {
        const workloads::ThreadSlice s = layout.slice(
            workloads::ThreadMapping::kSlab, cores, contexts, c, x);
        for (u32 j = 0; j < s.rpt; ++j) {
          ++owners[s.idx_base + j * s.idx_stride];
        }
      }
    }
    for (int owner : owners) EXPECT_EQ(owner, 1);
  }
}

// --- Controller conservation under random traffic ---

TEST(Property, ControllerCompletesEveryAcceptedRequestOnce) {
  Rng rng(404);
  DramConfig cfg = MachineConfig::paper_defaults().dram;
  StatSet stats;
  mem::ChannelDemux ctrl(cfg, "dram", &stats);
  Picos now = 0;
  u64 accepted_bytes = 0, completed = 0, completed_bytes = 0, accepted = 0;
  std::map<int, int> completions;  // request id -> count
  int next_id = 0;

  for (int step = 0; step < 20000; ++step) {
    if (rng.chance(0.3)) {
      mem::MemRequest req;
      const u32 sizes[] = {64, 128, 2048};
      req.bytes = sizes[rng.below(3)];
      const u64 row = rng.below(512);
      const u32 max_col = cfg.row_bytes - req.bytes;
      req.addr = row * cfg.row_bytes +
                 (max_col ? (rng.below(max_col / 64) * 64) : 0);
      req.is_write = rng.chance(0.2);
      const int id = next_id++;
      const u32 bytes = req.bytes;
      req.on_complete = [&, id, bytes](Picos) {
        ++completions[id];
        ++completed;
        completed_bytes += bytes;
      };
      if (ctrl.try_push(std::move(req), now)) {
        ++accepted;
        accepted_bytes += bytes;
      }
    }
    ctrl.tick(now);
    now += cfg.period_ps();
  }
  while (!ctrl.idle()) {
    ctrl.tick(now);
    now += cfg.period_ps();
  }
  EXPECT_EQ(completed, accepted);
  EXPECT_EQ(completed_bytes, accepted_bytes);
  EXPECT_EQ(stats.get("dram.bytes"), accepted_bytes);
  for (const auto& [id, count] : completions) {
    EXPECT_EQ(count, 1) << "request " << id << " completed " << count
                        << " times";
  }
}

// --- SIMT stack vs independent per-lane execution ---

/// Random branchy program: nested filtered regions over CSR TID bits, all
/// lanes eventually halting.
isa::Program random_branchy_program(Rng& rng) {
  std::string source = "csrr r1, TID\n";
  const int regions = 2 + static_cast<int>(rng.below(3));
  for (int k = 0; k < regions; ++k) {
    const u32 bit = 1u << rng.below(3);
    source += "andi r2, r1, " + std::to_string(bit) + "\n";
    source += "beq  r2, r0, else" + std::to_string(k) + "\n";
    const int then_len = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < then_len; ++i) source += "addi r3, r3, 1\n";
    source += "j join" + std::to_string(k) + "\n";
    source += "else" + std::to_string(k) + ":\n";
    const int else_len = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < else_len; ++i) source += "addi r4, r4, 1\n";
    source += "join" + std::to_string(k) + ":\n";
  }
  source += "halt\n";
  return isa::must_assemble("branchy", source);
}

TEST(Property, SimtStackMatchesPerLaneExecution) {
  Rng rng(505);
  for (int round = 0; round < 30; ++round) {
    const isa::Program program = random_branchy_program(rng);
    const isa::ReconvergenceTable reconv =
        isa::ReconvergenceTable::build(program);
    constexpr u32 kWidth = 8;
    mem::DramImage dram(64);
    mem::LocalStore local(64);

    // Reference: run each lane independently, recording its pc trace.
    std::vector<std::vector<u32>> want(kWidth);
    std::vector<core::Context> ref_lanes(kWidth);
    for (u32 l = 0; l < kWidth; ++l) {
      ref_lanes[l].csr.set(isa::Csr::kTid, l * 3 + round);
      while (ref_lanes[l].state != core::Context::State::kHalted) {
        want[l].push_back(ref_lanes[l].pc);
        core::step(ref_lanes[l], program, local, dram);
      }
    }

    // SIMT execution with the stack.
    gpgpu::SimtStack stack(kWidth);
    std::vector<core::Context> lanes(kWidth);
    std::vector<std::vector<u32>> got(kWidth);
    for (u32 l = 0; l < kWidth; ++l) {
      lanes[l].csr.set(isa::Csr::kTid, l * 3 + round);
    }
    u32 guard = 0;
    while (!stack.all_halted()) {
      ASSERT_LT(++guard, 10000u);
      const u32 pc = stack.pc();
      const gpgpu::LaneMask mask = stack.active_mask();
      const isa::Instr& in = program.at(pc);
      gpgpu::LaneMask taken = 0;
      for (u32 l = 0; l < kWidth; ++l) {
        if (!(mask & (gpgpu::LaneMask{1} << l))) continue;
        lanes[l].pc = pc;
        got[l].push_back(pc);
        if (core::step(lanes[l], program, local, dram).branch_taken) {
          taken |= gpgpu::LaneMask{1} << l;
        }
      }
      const core::StepKind kind = core::classify(in);
      if (kind == core::StepKind::kBranch) {
        stack.branch(taken, static_cast<u32>(static_cast<i32>(pc) + in.imm),
                     pc + 1, reconv.at(pc));
      } else if (kind == core::StepKind::kHalt) {
        stack.halt_lanes(mask);
      } else if (kind == core::StepKind::kJump) {
        stack.advance(lanes[static_cast<u32>(
                                std::countr_zero(mask))].pc);
      } else {
        stack.advance(pc + 1);
      }
    }
    for (u32 l = 0; l < kWidth; ++l) {
      EXPECT_EQ(got[l], want[l]) << "lane " << l << " diverged from its "
                                 << "independent execution (round " << round
                                 << ")";
    }
  }
}

// --- Address-mapping bijection across every field permutation ---

TEST(Property, EveryMappingPermutationIsABijection) {
  // row leads by grammar; the remaining four fields may appear in any
  // order. All 24 permutations must decode injectively and round-trip
  // encode(decode(a)) == a over a sampled address space.
  DramConfig cfg = MachineConfig::paper_defaults().dram;
  cfg.channels = 2;
  cfg.ranks = 2;
  std::vector<std::string> tail = {"col", "bank", "rank", "channel"};
  std::sort(tail.begin(), tail.end());
  Rng rng(7);
  do {
    std::string mapping = "row";
    for (const std::string& field : tail) mapping += ":" + field;
    cfg.mapping = mapping;
    mem::AddressMap map(cfg);
    std::set<std::tuple<u32, u32, u32, u64, u32>> seen;
    for (int i = 0; i < 2000; ++i) {
      // Dense low addresses + sparse high ones exercise every field.
      const Addr addr = i < 1000 ? static_cast<Addr>(i) * 131
                                 : rng.next_u64() % (u64{1} << 40);
      const mem::DramCoord c = map.decode(addr);
      EXPECT_EQ(map.encode(c), addr) << mapping;
      EXPECT_LT(c.channel, cfg.channels) << mapping;
      EXPECT_LT(c.rank, cfg.ranks) << mapping;
      EXPECT_LT(c.bank, cfg.banks) << mapping;
      EXPECT_LT(c.column, cfg.row_bytes) << mapping;
      seen.insert({c.channel, c.rank, c.bank, c.row, c.column});
    }
    // Injectivity: distinct addresses decode to distinct coordinates
    // (duplicates in the sample itself are possible only for equal addrs).
    std::set<Addr> addrs;
    for (int i = 0; i < 1000; ++i) addrs.insert(static_cast<Addr>(i) * 131);
    EXPECT_GE(seen.size(), addrs.size()) << mapping;
  } while (std::next_permutation(tail.begin(), tail.end()));
}

TEST(Property, StripeCoordInverseMatchesStripeIndex) {
  DramConfig cfg = MachineConfig::paper_defaults().dram;
  cfg.channels = 2;
  cfg.ranks = 2;
  cfg.mapping = "row:col:rank:bank:channel";  // everything sub-row
  mem::AddressMap map(cfg);
  EXPECT_EQ(map.stripes(), cfg.channels * cfg.ranks * cfg.banks);
  const mem::DramCoord base = map.decode(0);
  std::set<u32> indices;
  for (u32 s = 0; s < map.stripes(); ++s) {
    const mem::DramCoord c = map.stripe_coord(base, s);
    EXPECT_EQ(map.stripe_index(c), s);
    indices.insert(s);
  }
  EXPECT_EQ(indices.size(), map.stripes());
}

}  // namespace
}  // namespace mlp
