// Mid-run checkpoint tests (sim/snapshot.hpp): format round-trip and typed
// rejection of malformed blobs, then the load-bearing guarantee — for every
// architecture x benchmark, a run checkpointed at cycle N and finished by a
// fresh restore-and-run is counter-identical (every StatSet counter, runtime,
// verification) to the uninterrupted run, and the restored run's interval
// timeline is an exact suffix of the uninterrupted one.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "sim/fork.hpp"
#include "sim/prepare.hpp"
#include "sim/runner.hpp"
#include "sim/snapshot.hpp"

namespace mlp::sim {
namespace {

// --- Format ---

TEST(SnapshotFormat, WriterReaderRoundTrip) {
  SnapshotWriter w;
  w.begin_section(kSecMeta);
  w.put_u32(7);
  w.put_u64(0x1122334455667788ull);
  w.put_string("hello");
  w.put_bool(true);
  w.end_section();
  w.begin_section(kSecKernel);
  w.put_u8(0xab);
  w.end_section();

  SnapshotReader r(w.blob());
  SnapshotSection s;
  ASSERT_TRUE(r.next(&s));
  EXPECT_EQ(s.id, u32{kSecMeta});
  EXPECT_EQ(s.cursor.get_u32(), 7u);
  EXPECT_EQ(s.cursor.get_u64(), 0x1122334455667788ull);
  EXPECT_EQ(s.cursor.get_string(), "hello");
  EXPECT_TRUE(s.cursor.get_bool());
  EXPECT_TRUE(s.cursor.done());
  ASSERT_TRUE(r.next(&s));
  EXPECT_EQ(s.id, u32{kSecKernel});
  EXPECT_EQ(s.cursor.get_u8(), 0xab);
  EXPECT_FALSE(r.next(&s));
}

TEST(SnapshotFormat, RejectsBadMagic) {
  std::string blob = "NOTASNAPxxxx";
  try {
    SnapshotReader r(blob);
    FAIL() << "bad magic must throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "snapshot");
  }
}

TEST(SnapshotFormat, RejectsBadVersion) {
  SnapshotWriter w;
  std::string blob = w.blob();
  blob[8] = 99;  // patch the version field
  try {
    SnapshotReader r(blob);
    FAIL() << "wrong version must throw";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), "snapshot");
  }
}

TEST(SnapshotFormat, RejectsTruncatedBlob) {
  SnapshotWriter w;
  w.begin_section(kSecMeta);
  w.put_u64(1);
  w.end_section();
  const std::string& full = w.blob();
  // Every proper prefix that still passes the header must fail cleanly with
  // a typed error, never crash — the round-trip fuzz the CI ASan job runs.
  // (A cut at exactly 12 bytes is the valid empty blob, so start past it.)
  for (std::size_t cut = 13; cut < full.size(); ++cut) {
    const std::string blob = full.substr(0, cut);
    try {
      SnapshotReader r(blob);
      SnapshotSection s;
      while (r.next(&s)) {
      }
      FAIL() << "truncation at " << cut << " must throw";
    } catch (const SimError& e) {
      EXPECT_EQ(e.kind(), "snapshot");
    }
  }
}

TEST(SnapshotFormat, CursorRejectsOverrun) {
  SnapshotWriter w;
  w.begin_section(kSecMeta);
  w.put_u32(1);
  w.end_section();
  SnapshotReader r(w.blob());
  SnapshotSection s;
  ASSERT_TRUE(r.next(&s));
  s.cursor.get_u32();
  EXPECT_THROW(s.cursor.get_u32(), SimError);
}

TEST(SnapshotFormat, MetaPeekReadsIdentity) {
  SnapshotWriter w;
  SnapshotMeta meta;
  meta.cycle = 1234;
  meta.now_ps = 99;
  meta.arch_label = "millipede";
  meta.warp_width = 4;
  meta.image_bytes = 4096;
  meta.fault_sequence = 17;
  w.begin_section(kSecMeta);
  meta.save(w);
  w.end_section();
  const SnapshotMeta back = snapshot_meta(w.blob());
  EXPECT_EQ(back.cycle, 1234u);
  EXPECT_EQ(back.now_ps, 99u);
  EXPECT_EQ(back.arch_label, "millipede");
  EXPECT_EQ(back.warp_width, 4u);
  EXPECT_EQ(back.image_bytes, 4096u);
  EXPECT_EQ(back.fault_sequence, 17u);
}

// --- Equivalence: capture is non-invasive, restore finishes identically ---

/// The equivalence matrix uses a reduced data volume so 64 cases x 3 runs
/// stay ctest-friendly; the CI gate re-runs the full-size sweep comparison.
constexpr u64 kRows = 24;

SuiteOptions small_options() {
  SuiteOptions o;
  o.rows = kRows;
  return o;
}

void expect_identical(const arch::RunResult& a, const arch::RunResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.compute_cycles, b.compute_cycles) << label;
  EXPECT_EQ(a.runtime_ps, b.runtime_ps) << label;
  EXPECT_EQ(a.thread_instructions, b.thread_instructions) << label;
  EXPECT_EQ(a.warp_width, b.warp_width) << label;
  EXPECT_EQ(a.final_clock_mhz, b.final_clock_mhz) << label;
  EXPECT_EQ(a.insts_per_word, b.insts_per_word) << label;
  EXPECT_EQ(a.branches_per_inst, b.branches_per_inst) << label;
  EXPECT_EQ(a.row_miss_rate, b.row_miss_rate) << label;
  EXPECT_EQ(a.energy.total_j(), b.energy.total_j()) << label;
  EXPECT_EQ(a.verification, b.verification) << label;
  // Every counter, by name: the strong form of the gate.
  ASSERT_EQ(a.stats.size(), b.stats.size()) << label;
  for (const auto& [name, value] : a.stats) {
    const auto it = b.stats.find(name);
    ASSERT_NE(it, b.stats.end()) << label << " missing " << name;
    EXPECT_EQ(value, it->second) << label << " counter " << name;
  }
}

struct EquivCase {
  arch::ArchKind kind;
  std::string bench;
};

class SnapshotEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(SnapshotEquivalence, CheckpointRestoreMatchesUninterrupted) {
  const EquivCase& c = GetParam();
  const MatrixJob job{c.kind, c.bench, small_options(), ""};
  PrepareCache cache;  // share preparation across the three runs

  const MatrixResult baseline = run_job(job, &cache);
  ASSERT_TRUE(baseline.ok()) << baseline.error;

  // Capture at the first quiescent edge at or past cycle 1. The run must
  // finish exactly as if no snapshot was taken.
  SnapshotPlan capture;
  capture.capture = true;
  capture.checkpoint_at = 1;
  const MatrixResult captured = run_job(job, &cache, nullptr, &capture);
  ASSERT_TRUE(captured.ok()) << captured.error;
  ASSERT_TRUE(capture.captured_ok)
      << "no quiescent edge found after cycle 1 for "
      << arch::arch_name(c.kind) << "/" << c.bench;
  EXPECT_GE(capture.captured_cycle, capture.checkpoint_at);
  EXPECT_FALSE(capture.captured.empty());
  expect_identical(baseline.result, captured.result, "capture run");

  // Restore into a fresh machine and finish: counter-identical.
  SnapshotPlan restore;
  restore.restore_from = &capture.captured;
  const MatrixResult restored = run_job(job, &cache, nullptr, &restore);
  ASSERT_TRUE(restored.ok()) << restored.error;
  expect_identical(baseline.result, restored.result, "restored run");
}

std::vector<EquivCase> all_cases() {
  std::vector<EquivCase> cases;
  for (const arch::ArchKind kind : arch::all_arch_kinds()) {
    for (const std::string& bench : workloads::bmla_names()) {
      cases.push_back({kind, bench});
    }
  }
  return cases;
}

std::string equiv_name(const ::testing::TestParamInfo<EquivCase>& info) {
  std::string name = std::string(arch::arch_name(info.param.kind)) + "_" +
                     info.param.bench;
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllArchsAllBenches, SnapshotEquivalence,
                         ::testing::ValuesIn(all_cases()), equiv_name);

// --- Trace suffix equivalence ---

std::vector<std::string> csv_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(SnapshotTrace, RestoredTimelineIsExactSuffix) {
  const MatrixJob job{arch::ArchKind::kMillipede, "nbayes", small_options(),
                      ""};
  const PreparedJobPtr prepared = prepare_job(job);
  trace::TraceConfig tcfg;
  tcfg.interval_cycles = 64;

  trace::TraceSession full_session(tcfg);
  const arch::RunResult full =
      arch::run_arch(job.kind, job.options.cfg, prepared->workload,
                     job.options.seed, &full_session, &prepared->input);
  ASSERT_EQ(full.verification, "");

  SnapshotPlan capture;
  capture.capture = true;
  capture.checkpoint_at = 300;  // past a few interval samples
  trace::TraceSession capture_session(tcfg);
  arch::run_arch(job.kind, job.options.cfg, prepared->workload,
                 job.options.seed, &capture_session, &prepared->input,
                 &capture);
  ASSERT_TRUE(capture.captured_ok);

  SnapshotPlan restore;
  restore.restore_from = &capture.captured;
  trace::TraceSession restored_session(tcfg);
  const arch::RunResult restored =
      arch::run_arch(job.kind, job.options.cfg, prepared->workload,
                     job.options.seed, &restored_session, &prepared->input,
                     &restore);
  ASSERT_EQ(restored.verification, "");

  const std::vector<std::string> full_csv =
      csv_lines(full_session.interval_csv());
  const std::vector<std::string> restored_csv =
      csv_lines(restored_session.interval_csv());
  ASSERT_GE(full_csv.size(), restored_csv.size());
  ASSERT_GE(restored_csv.size(), 2u) << "restored run sampled no rows";
  EXPECT_EQ(full_csv.front(), restored_csv.front()) << "header mismatch";
  // Every restored row must equal the corresponding tail row of the full
  // run: same sample cycles, same counter deltas.
  const std::size_t offset = full_csv.size() - restored_csv.size();
  for (std::size_t i = 1; i < restored_csv.size(); ++i) {
    EXPECT_EQ(restored_csv[i], full_csv[offset + i]) << "row " << i;
  }
}

// --- Cross-machine rejection ---

TEST(SnapshotRestore, RejectsWrongArchitecture) {
  const MatrixJob job{arch::ArchKind::kMillipede, "count", small_options(),
                      ""};
  PrepareCache cache;
  SnapshotPlan capture;
  capture.capture = true;
  capture.checkpoint_at = 1;
  const MatrixResult captured = run_job(job, &cache, nullptr, &capture);
  ASSERT_TRUE(captured.ok()) << captured.error;
  ASSERT_TRUE(capture.captured_ok);

  MatrixJob other = job;
  other.kind = arch::ArchKind::kSsmc;
  SnapshotPlan restore;
  restore.restore_from = &capture.captured;
  const MatrixResult rejected = run_job(other, &cache, nullptr, &restore);
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.error.find("snapshot"), std::string::npos)
      << rejected.error;
}

// --- DRAM hierarchy + refresh state across checkpoint/restore ---

TEST(SnapshotDram, MidRefreshDebtRestoreIsCounterIdentical) {
  // The acceptance bar for snapshot format v2: capture while rank refresh
  // cursors are mid-interval and debt may be outstanding, restore into a
  // fresh machine, and land counter-identical — including dram.refreshes
  // and dram.refresh_stall_ps. An aggressive tREFI keeps refresh state hot
  // at whatever quiescent edge the capture lands on, and the full
  // hierarchy (2 channels x 2 ranks, sub-row striping, idle/hit-capped
  // open policy) exercises every new snapshot section.
  SuiteOptions o = small_options();
  o.cfg.dram.channels = 2;
  o.cfg.dram.ranks = 2;
  o.cfg.dram.mapping = "row:rank:bank:channel:col";
  o.cfg.dram.page_policy = "open:idle=64:hits=8";
  o.cfg.dram.refresh = "on:trefi=40:trfc=8:postpone=4";
  const MatrixJob job{arch::ArchKind::kMillipede, "nbayes", o, ""};
  PrepareCache cache;

  const MatrixResult baseline = run_job(job, &cache);
  ASSERT_TRUE(baseline.ok()) << baseline.error;
  ASSERT_GT(baseline.result.stats.at("dram.refreshes"), 0u);

  SnapshotPlan capture;
  capture.capture = true;
  capture.checkpoint_at = 200;  // well into the refresh cadence
  const MatrixResult captured = run_job(job, &cache, nullptr, &capture);
  ASSERT_TRUE(captured.ok()) << captured.error;
  ASSERT_TRUE(capture.captured_ok);
  expect_identical(baseline.result, captured.result, "capture run");

  SnapshotPlan restore;
  restore.restore_from = &capture.captured;
  const MatrixResult restored = run_job(job, &cache, nullptr, &restore);
  ASSERT_TRUE(restored.ok()) << restored.error;
  expect_identical(baseline.result, restored.result, "restored run");
}

TEST(SnapshotDram, ForkKeySplitsOnEveryDramAxis) {
  const MatrixJob base{arch::ArchKind::kMillipede, "count", small_options(),
                       ""};
  MatrixJob changed = base;
  changed.options.cfg.dram.channels = 2;
  EXPECT_NE(fork_key(base), fork_key(changed));
  changed = base;
  changed.options.cfg.dram.ranks = 2;
  EXPECT_NE(fork_key(base), fork_key(changed));
  changed = base;
  changed.options.cfg.dram.mapping = "row:rank:bank:channel:col";
  EXPECT_NE(fork_key(base), fork_key(changed));
  changed = base;
  changed.options.cfg.dram.page_policy = "closed";
  EXPECT_NE(fork_key(base), fork_key(changed));
  changed = base;
  changed.options.cfg.dram.refresh = "on";
  EXPECT_NE(fork_key(base), fork_key(changed));
}

// --- Warm-snapshot forking (mlpsweep --fork-at) ---

TEST(Fork, KeyIgnoresFaultRatesButNotTheInjectorBit) {
  MatrixJob a{arch::ArchKind::kMillipede, "count", small_options(), ""};
  MatrixJob b = a;
  b.options.cfg.dram.fault.bit_flip_rate = 1e-12;
  b.options.cfg.dram.fault.delay_rate = 0.25;
  b.options.cfg.dram.fault.drop_rate = 0.01;
  // Rates alone don't split the group...
  a.options.cfg.dram.fault.bit_flip_rate = 1e-15;
  EXPECT_EQ(fork_key(a), fork_key(b));
  // ...but injector presence does (the snapshot records the draw cursor),
  a.options.cfg.dram.fault.bit_flip_rate = 0.0;
  EXPECT_NE(fork_key(a), fork_key(b));
  // ...and so does any other knob.
  a.options.cfg.dram.fault.bit_flip_rate = 1e-15;
  a.options.cfg.millipede.pf_entries = 8;
  EXPECT_NE(fork_key(a), fork_key(b));
  a = b;
  a.kind = arch::ArchKind::kSsmc;
  EXPECT_NE(fork_key(a), fork_key(b));
  a = b;
  a.options.seed = 2;
  EXPECT_NE(fork_key(a), fork_key(b));
}

TEST(Fork, ForkedFaultSweepIsByteIdenticalAndSavesWarmup) {
  // A fault-rate grid over one (arch, bench): three rates tiny enough that
  // no draw fires during warmup (forkable) plus one hot delay rate whose
  // dirty draw stream must force a full rerun through the unsafe path.
  const double kRates[] = {1e-15, 2e-15, 3e-15, 0.5};
  std::vector<MatrixJob> jobs;
  for (const double rate : kRates) {
    MatrixJob job{arch::ArchKind::kMillipede, "nbayes", small_options(), ""};
    if (rate >= 0.5) {
      job.options.cfg.dram.fault.delay_rate = rate;
    } else {
      job.options.cfg.dram.fault.bit_flip_rate = rate;
    }
    jobs.push_back(job);
  }

  PrepareCache plain_cache, fork_cache;
  const std::vector<MatrixResult> plain = run_matrix(jobs, 2, &plain_cache);
  ForkStats stats;
  const std::vector<MatrixResult> forked =
      run_matrix_forked(jobs, /*fork_at=*/200, /*threads=*/2, &fork_cache,
                        &stats);

  ASSERT_EQ(plain.size(), forked.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(plain[i].ok()) << plain[i].error;
    ASSERT_TRUE(forked[i].ok()) << forked[i].error;
    expect_identical(plain[i].result, forked[i].result,
                     "point " + std::to_string(i));
  }
  EXPECT_EQ(stats.groups, 1u);
  // Two of the three members restore from the warm blob; the hot-delay
  // point's draw stream is dirty under its own config, so it reruns.
  EXPECT_EQ(stats.forked_points, 2u);
  EXPECT_EQ(stats.unsafe_points, 1u);
  EXPECT_GE(stats.warmup_cycles_saved, 2 * 200u);
}

TEST(Fork, SerialAndParallelForkedRunsMatch) {
  std::vector<MatrixJob> jobs;
  for (const double rate : {1e-15, 2e-15, 3e-15, 4e-15}) {
    MatrixJob job{arch::ArchKind::kSsmc, "count", small_options(), ""};
    job.options.cfg.dram.fault.bit_flip_rate = rate;
    jobs.push_back(job);
  }
  const std::vector<MatrixResult> serial =
      run_matrix_forked(jobs, 100, /*threads=*/1);
  const std::vector<MatrixResult> parallel =
      run_matrix_forked(jobs, 100, /*threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].ok()) << serial[i].error;
    ASSERT_TRUE(parallel[i].ok()) << parallel[i].error;
    expect_identical(serial[i].result, parallel[i].result,
                     "point " + std::to_string(i));
  }
}

// --- Snapshot cache (mlpserved snapshot/restore verbs) ---

TEST(SnapshotCacheTest, LruEvictsOldestAndSharesEntries) {
  SnapshotCache cache(/*max_entries=*/2);
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", "blob-a", 100);
  cache.put("b", "blob-b", 200);
  const SnapshotCache::EntryPtr a = cache.get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->blob, "blob-a");
  EXPECT_EQ(a->captured_cycle, 100u);

  // "b" is now least-recently used; inserting "c" evicts it.
  cache.put("c", "blob-c", 300);
  EXPECT_EQ(cache.get("b"), nullptr);
  ASSERT_NE(cache.get("a"), nullptr);
  ASSERT_NE(cache.get("c"), nullptr);

  // A held entry survives its own eviction (shared ownership).
  cache.put("d", std::string(16, 'd'), 400);  // evicts "a"
  EXPECT_EQ(a->blob, "blob-a");
  EXPECT_EQ(cache.get("a"), nullptr);

  const SnapshotCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.blob_bytes, std::string("blob-c").size() + 16);

  // Re-putting an existing key replaces in place without eviction.
  cache.put("c", "blob-c2", 301);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.get("c")->blob, "blob-c2");
}

}  // namespace
}  // namespace mlp::sim
