// Harness tests: volume-based workload sizing (now an explicit SuiteOptions
// field instead of the removed MLP_BENCH_* environment variables), geomean,
// and verified runs.

#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace mlp::sim {
namespace {

TEST(Runner, VolumeSizingEqualizesRows) {
  const MachineConfig cfg = MachineConfig::paper_defaults();
  // count: 1 word/record -> 192 groups; gda: 16 words -> 12 groups.
  const u64 count_records = records_for("count", cfg);
  const u64 gda_records = records_for("gda", cfg);
  EXPECT_EQ(count_records, kDefaultRows * 512);
  EXPECT_EQ(gda_records, (kDefaultRows / 16) * 512);
  // Data volumes within one group of each other.
  const u64 count_rows = count_records * 1 / 512;
  const u64 gda_rows = gda_records * 16 / 512;
  EXPECT_NEAR(static_cast<double>(count_rows), static_cast<double>(gda_rows),
              16.0);
}

TEST(Runner, RowsParameterScalesVolume) {
  const MachineConfig cfg = MachineConfig::paper_defaults();
  EXPECT_EQ(records_for("count", cfg, 384), 384u * 512u);
  EXPECT_EQ(records_for("count", cfg, 48), 48u * 512u);
  EXPECT_EQ(records_for("gda", cfg, 384), (384u / 16u) * 512u);
}

TEST(Runner, SuiteOptionsRowsControlsSizing) {
  SuiteOptions small;
  small.rows = 24;
  const arch::RunResult r =
      run_verified(arch::ArchKind::kMillipede, "count", small);
  EXPECT_EQ(r.input_words, 24u * 512u);
}

TEST(Runner, RecordsOverrideRows) {
  SuiteOptions options;
  options.records = 2048;
  options.rows = 768;  // must be ignored: records wins
  const arch::RunResult r =
      run_verified(arch::ArchKind::kMillipede, "count", options);
  EXPECT_EQ(r.input_words, 2048u);
}

TEST(Runner, Geomean) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(RunnerDeathTest, GeomeanRejectsNonPositive) {
  EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
  EXPECT_DEATH(geomean({}), "nothing");
}

TEST(Runner, RunVerifiedProducesConsistentResult) {
  SuiteOptions options;
  options.records = 2048;
  const arch::RunResult r =
      run_verified(arch::ArchKind::kMillipede, "count", options);
  EXPECT_EQ(r.workload, "count");
  EXPECT_EQ(r.arch, "millipede");
  EXPECT_EQ(r.input_words, 2048u);
  EXPECT_GT(r.insts_per_word, 5.0);
  EXPECT_LT(r.insts_per_word, 30.0);
}

TEST(Runner, DeterministicAcrossRuns) {
  SuiteOptions options;
  options.records = 2048;
  const arch::RunResult a =
      run_verified(arch::ArchKind::kSsmc, "variance", options);
  const arch::RunResult b =
      run_verified(arch::ArchKind::kSsmc, "variance", options);
  EXPECT_EQ(a.runtime_ps, b.runtime_ps);
  EXPECT_EQ(a.thread_instructions, b.thread_instructions);
  EXPECT_EQ(a.stats.at("dram.bytes"), b.stats.at("dram.bytes"));
}

TEST(Runner, SeedChangesDataNotShape) {
  SuiteOptions a_options, b_options;
  a_options.records = b_options.records = 4096;
  a_options.seed = 1;
  b_options.seed = 2;
  const arch::RunResult a =
      run_verified(arch::ArchKind::kMillipede, "count", a_options);
  const arch::RunResult b =
      run_verified(arch::ArchKind::kMillipede, "count", b_options);
  // Same instruction volume within branch-mix noise; different exact counts.
  EXPECT_NEAR(static_cast<double>(a.thread_instructions),
              static_cast<double>(b.thread_instructions),
              0.05 * static_cast<double>(a.thread_instructions));
}

}  // namespace
}  // namespace mlp::sim
