// Extending the suite: write your own BMLA kernel in the Millipede ISA,
// package it as a Workload (generator + schema + golden reference), and run
// it — verified — on any architecture. The kernel here computes per-bin
// min/max over a stream of integer samples: irregular (data-dependent
// branches + indirect state updates), compact (64 words of live state), and
// row-dense — the three properties Section III demands.

#include <cstdio>

#include "arch/system.hpp"
#include "isa/assembler.hpp"
#include "workloads/skeleton.hpp"

int main() {
  using namespace mlp;

  // Live state: bin b at byte b*8 — {min, max}, 8 bins. Records: one word,
  // value in [0, 1<<20), bin = value & 7.
  const char* preamble = R"(
    li  r20, 0              ; scratch
  )";
  const char* body = R"(
    lw   r16, 0(r15)        ; value
    andi r17, r16, 7        ; bin
    slli r17, r17, 3        ; bin * 8
    lw.l r18, 0(r17)        ; current min
    bge  r16, r18, mm_no_min    ; data-dependent
    sw.l r16, 0(r17)
mm_no_min:
    lw.l r18, 4(r17)        ; current max
    ble  r16, r18, mm_no_max
    sw.l r16, 4(r17)
mm_no_max:
  )";

  workloads::Workload wl;
  wl.name = "minmax";
  wl.description = "per-bin running min/max (custom example kernel)";
  wl.program = isa::must_assemble(
      "minmax", workloads::kernel_skeleton(preamble, body));
  wl.fields = 1;
  wl.num_records = 32768;
  // min/max are idempotent under per-corelet partitioning, but NOT additive:
  // reduce by hand below instead of the generic schema reduce.
  wl.state_schema = {};

  wl.generate = [](const workloads::InterleavedLayout& layout,
                   mem::DramImage& image, Rng& rng) {
    for (u64 r = 0; r < layout.num_records(); ++r) {
      image.write_u32(layout.address(0, r),
                      static_cast<u32>(rng.below(1u << 20)));
    }
  };
  wl.reference = [](const mem::DramImage&, const workloads::InterleavedLayout&) {
    return std::vector<double>{};  // schema empty: verified by hand below
  };
  wl.init_state = [](mem::LocalStore& state) {
    for (u32 b = 0; b < 8; ++b) {
      state.store(b * 8, 0x7fffffff);  // min seed
      state.store(b * 8 + 4, 0);       // max seed
    }
  };

  // NOTE on correctness: min/max via load-compare-store is race-free here
  // because each bin's candidates from different contexts still serialize
  // per instruction, and a lost update can only be overwritten by a value
  // that is itself <= min (resp >= max) seen so far... which is NOT true in
  // general! To stay truly race-free this example runs ONE context per
  // corelet — a deliberate demonstration that shared-state kernels must use
  // the single-instruction atomics unless they reason carefully.
  MachineConfig cfg = MachineConfig::paper_defaults();
  cfg.core.contexts = 1;

  const arch::RunResult r =
      arch::run_arch(arch::ArchKind::kMillipede, cfg, wl);
  std::printf("ran custom kernel '%s': %.2f us, %.1f insts/word\n",
              wl.name.c_str(), static_cast<double>(r.runtime_ps) / 1e6,
              r.insts_per_word);

  // Hand-rolled verification: recompute min/max from the same generated
  // image and compare against the final Reduce over the corelet states.
  arch::PreparedInput input = arch::prepare_input(cfg, wl, 1);
  u32 ref_min[8], ref_max[8];
  for (u32 b = 0; b < 8; ++b) {
    ref_min[b] = 0x7fffffff;
    ref_max[b] = 0;
  }
  for (u64 rec = 0; rec < wl.num_records; ++rec) {
    const u32 v = input.image.read_u32(input.layout.address(0, rec));
    const u32 b = v & 7;
    ref_min[b] = std::min(ref_min[b], v);
    ref_max[b] = std::max(ref_max[b], v);
  }
  // Re-run functionally to get the states (run_arch verified the schema —
  // empty here — so redo the reduce manually).
  workloads::FunctionalResult func =
      workloads::run_functional(wl, cfg.core.cores, cfg.core.contexts,
                                cfg.dram.row_bytes, cfg.core.local_mem_bytes,
                                1);
  bool ok = true;
  for (u32 b = 0; b < 8; ++b) {
    u32 got_min = 0x7fffffff, got_max = 0;
    for (const mem::LocalStore& state : func.states) {
      got_min = std::min(got_min, state.load(b * 8));
      got_max = std::max(got_max, state.load(b * 8 + 4));
    }
    if (got_min != ref_min[b] || got_max != ref_max[b]) {
      std::printf("bin %u MISMATCH: got [%u,%u] want [%u,%u]\n", b, got_min,
                  got_max, ref_min[b], ref_max[b]);
      ok = false;
    }
  }
  std::printf(ok ? "custom kernel verified across all bins\n"
                 : "custom kernel FAILED verification\n");
  return ok ? 0 : 1;
}
