// Domain scenario: one k-means iteration for a market-segmentation-style
// clustering job (the paper's motivating "full application" example),
// executed on all four PNM architectures. Prints the recovered cluster
// means (from the host-side final Reduce) and a cross-architecture
// performance/energy comparison.

#include <cstdio>

#include "arch/system.hpp"

int main() {
  using namespace mlp;

  workloads::WorkloadParams params;
  params.num_records = 64 * 1024;
  const workloads::Workload workload = workloads::make_bmla("kmeans", params);
  const MachineConfig cfg = MachineConfig::paper_defaults();

  std::printf("k-means, %llu points in %u dimensions, k=8\n\n",
              static_cast<unsigned long long>(workload.num_records),
              workload.fields);

  std::printf("%-12s %12s %12s %14s\n", "architecture", "runtime_us",
              "energy_uJ", "energy*delay");
  arch::RunResult mlp_result;
  for (const arch::ArchKind kind :
       {arch::ArchKind::kGpgpu, arch::ArchKind::kSsmc, arch::ArchKind::kVws,
        arch::ArchKind::kMillipede}) {
    const arch::RunResult r = arch::run_arch(kind, cfg, workload);
    MLP_CHECK(r.verification.empty(), "verification failed");
    std::printf("%-12s %12.1f %12.2f %14.3g\n", r.arch.c_str(),
                static_cast<double>(r.runtime_ps) / 1e6,
                r.energy.total_j() * 1e6, r.energy_delay());
    if (kind == arch::ArchKind::kMillipede) mlp_result = r;
  }

  // Host-side final Reduce already happened inside the run (that's how
  // verification works); recompute the cluster means from the reference
  // (identical within float tolerance) for display.
  arch::PreparedInput input = arch::prepare_input(cfg, workload, 1);
  const auto reduced = workload.reference(input.image, input.layout);
  // Layout of the reduced vector: acc[8*8], counts[8], var[8*8].
  std::printf("\nrecovered cluster means (first 4 dims):\n");
  for (u32 c = 0; c < 8; ++c) {
    const double n = reduced[64 + c];
    std::printf("  cluster %u (n=%6.0f): [", c, n);
    for (u32 d = 0; d < 4; ++d) {
      std::printf("%7.2f%s", reduced[c * 8 + d] / n, d + 1 < 4 ? ", " : "");
    }
    std::printf(" ...]\n");
  }
  return 0;
}
