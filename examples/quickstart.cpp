// Quickstart: run a built-in BMLA benchmark on the Millipede processor and
// inspect the results. Shows the three-line happy path — make a workload,
// run it on an architecture, read the verified result — plus where the
// interesting statistics live.
//
//   ./examples/quickstart [benchmark] [records]

#include <cstdio>
#include <cstdlib>

#include "arch/system.hpp"

int main(int argc, char** argv) {
  using namespace mlp;

  const std::string bench = argc > 1 ? argv[1] : "nbayes";
  workloads::WorkloadParams params;
  params.num_records = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32768;

  // 1. Build the workload: kernel binary + data generator + golden reference.
  const workloads::Workload workload = workloads::make_bmla(bench, params);
  std::printf("workload '%s': %llu records x %u words, %u-instruction kernel\n",
              workload.name.c_str(),
              static_cast<unsigned long long>(workload.num_records),
              workload.fields, workload.program.size());

  // 2. Run it on the paper's Millipede configuration (Table III).
  const MachineConfig cfg = MachineConfig::paper_defaults();
  const arch::RunResult result =
      arch::run_arch(arch::ArchKind::kMillipede, cfg, workload);

  // 3. Results are verified against the host golden reference on every run.
  if (!result.verification.empty()) {
    std::printf("VERIFICATION FAILED: %s\n", result.verification.c_str());
    return 1;
  }
  std::printf("verified OK against the golden reference\n\n");

  std::printf("runtime:            %.2f us (%llu compute cycles)\n",
              static_cast<double>(result.runtime_ps) / 1e6,
              static_cast<unsigned long long>(result.compute_cycles));
  std::printf("instructions:       %llu (%.1f per input word)\n",
              static_cast<unsigned long long>(result.thread_instructions),
              result.insts_per_word);
  std::printf("rate-matched clock: %.0f MHz (nominal 700)\n",
              result.final_clock_mhz);
  std::printf("energy:             %.2f uJ (core %.2f / dram %.2f / leak %.2f)\n",
              result.energy.total_j() * 1e6, result.energy.core_j * 1e6,
              result.energy.dram_j * 1e6, result.energy.leak_j * 1e6);
  std::printf("row prefetches:     %llu (premature evictions: %llu)\n",
              static_cast<unsigned long long>(
                  result.stats.at("pb.row_prefetches")),
              static_cast<unsigned long long>(
                  result.stats.at("pb.premature_evictions")));
  return 0;
}
