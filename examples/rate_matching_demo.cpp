// Demonstrates coarse-grain compute-memory rate matching (the paper's
// fourth contribution): for each BMLA the Millipede clock converges to the
// slowest frequency that keeps memory the bottleneck, trading idle compute
// cycles for energy at (near) zero performance cost. Compare the converged
// clocks against the paper's Table IV column 5.

#include <cstdio>

#include "sim/runner.hpp"

int main() {
  using namespace mlp;

  std::printf("%-10s %14s %14s %12s %12s\n", "bench", "clock_MHz",
              "runtime_vs_700", "core_energy", "total_energy");
  for (const std::string& bench : workloads::bmla_names()) {
    sim::SuiteOptions options;
    const arch::RunResult matched =
        sim::run_verified(arch::ArchKind::kMillipede, bench, options);
    const arch::RunResult nominal =
        sim::run_verified(arch::ArchKind::kMillipedeNoRateMatch, bench,
                          options);
    std::printf("%-10s %14.0f %13.1f%% %11.1f%% %11.1f%%\n", bench.c_str(),
                matched.final_clock_mhz,
                100.0 * static_cast<double>(matched.runtime_ps) /
                    static_cast<double>(nominal.runtime_ps),
                100.0 * matched.energy.core_j / nominal.energy.core_j,
                100.0 * matched.energy.total_j() / nominal.energy.total_j());
  }
  std::printf("\npaper Table IV clocks: count 544, sample 528, variance 581,\n"
              "nbayes 565, classify 625, kmeans 613, pca 644, gda 644 MHz\n");
  return 0;
}
