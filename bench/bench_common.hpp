#pragma once
// Shared helpers for the figure/table reproduction binaries: the harness
// flags every binary accepts (--jobs for parallel simulation, --rows for
// data volume), grid execution over sim::run_matrix, consistent benchmark
// ordering (the paper sorts its x-axis by instructions per input word),
// normalization, and table emission.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/pool.hpp"
#include "sim/runner.hpp"

namespace mlp::bench {

using arch::ArchKind;
using arch::RunResult;

/// Results of one architecture across the whole suite, keyed by benchmark.
using SuiteResults = std::map<std::string, RunResult>;

/// Harness flags common to every reproduction binary.
struct HarnessOptions {
  u32 jobs = 0;                  ///< concurrent simulations; 0 = all threads
  u64 rows = sim::kDefaultRows;  ///< data volume per benchmark in DRAM rows
};

inline u64 parse_positive(const char* flag, const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || value == 0) {
    std::fprintf(stderr, "%s expects a positive integer, got \"%s\"\n", flag,
                 text);
    std::exit(2);
  }
  return value;
}

inline HarnessOptions parse_harness(int argc, char** argv) {
  HarnessOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs" || arg == "-j") {
      options.jobs = static_cast<u32>(parse_positive("--jobs", next()));
    } else if (arg == "--rows") {
      options.rows = parse_positive("--rows", next());
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "  --jobs N   concurrent simulations (default: all hardware "
          "threads)\n"
          "  --rows N   data volume per benchmark in DRAM rows (default "
          "%llu)\n",
          static_cast<unsigned long long>(sim::kDefaultRows));
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// Append one (tag, architecture) full-suite sweep to a job grid.
inline void add_suite(std::vector<sim::MatrixJob>* jobs,
                      const std::string& tag, ArchKind kind,
                      const sim::SuiteOptions& options) {
  for (const std::string& name : workloads::bmla_names()) {
    jobs->push_back({kind, name, options, tag});
  }
}

/// Run a job grid in parallel and group the results by tag. Any failure is
/// fatal: reproduction binaries must never print unverified numbers.
inline std::map<std::string, SuiteResults> run_grid(
    const std::vector<sim::MatrixJob>& jobs, const HarnessOptions& harness) {
  std::map<std::string, SuiteResults> grid;
  bool failed = false;
  for (sim::MatrixResult& r : sim::run_matrix(jobs, harness.jobs)) {
    if (!r.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s: %s\n",
                   arch::arch_name(r.job.kind), r.job.bench.c_str(),
                   r.error.c_str());
      failed = true;
      continue;
    }
    grid[r.job.tag].emplace(r.job.bench, std::move(r.result));
  }
  if (failed) std::exit(1);
  return grid;
}

/// Run a job list in parallel and return verified results in submission
/// order (for binaries whose rows are not a tag × benchmark grid).
inline std::vector<RunResult> run_jobs(const std::vector<sim::MatrixJob>& jobs,
                                       const HarnessOptions& harness) {
  std::vector<RunResult> results;
  results.reserve(jobs.size());
  bool failed = false;
  for (sim::MatrixResult& r : sim::run_matrix(jobs, harness.jobs)) {
    if (!r.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s: %s\n",
                   arch::arch_name(r.job.kind), r.job.bench.c_str(),
                   r.error.c_str());
      failed = true;
      continue;
    }
    results.push_back(std::move(r.result));
  }
  if (failed) std::exit(1);
  return results;
}

inline SuiteResults run_suite_map(ArchKind kind,
                                  const sim::SuiteOptions& options,
                                  const HarnessOptions& harness) {
  std::vector<sim::MatrixJob> jobs;
  add_suite(&jobs, "suite", kind, options);
  std::map<std::string, SuiteResults> grid = run_grid(jobs, harness);
  return std::move(grid["suite"]);
}

/// Benchmark names sorted by measured instructions per input word (the
/// paper's Fig. 3/4 x-axis ordering, Table IV top-to-bottom).
inline std::vector<std::string> sorted_benches(const SuiteResults& any) {
  std::vector<std::string> names = workloads::bmla_names();
  std::sort(names.begin(), names.end(),
            [&](const std::string& a, const std::string& b) {
              return any.at(a).insts_per_word < any.at(b).insts_per_word;
            });
  return names;
}

inline void emit(const Table& table) {
  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s\n", table.to_csv().c_str());
}

inline void print_header(const char* what, const HarnessOptions& harness) {
  std::printf("=================================================================\n");
  std::printf("Millipede reproduction — %s\n", what);
  if (harness.jobs == 1) {
    std::printf("data volume per benchmark: %llu DRAM rows (--rows), "
                "serial (--jobs)\n",
                static_cast<unsigned long long>(harness.rows));
  } else {
    std::printf("data volume per benchmark: %llu DRAM rows (--rows), "
                "%u parallel jobs (--jobs)\n",
                static_cast<unsigned long long>(harness.rows),
                harness.jobs == 0 ? sim::ThreadPool::default_threads()
                                  : harness.jobs);
  }
  std::printf("=================================================================\n\n");
  std::fflush(stdout);
}

}  // namespace mlp::bench
