#pragma once
// Shared helpers for the figure/table reproduction binaries: consistent
// benchmark ordering (the paper sorts its x-axis by instructions per input
// word), normalization, and table emission.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/runner.hpp"

namespace mlp::bench {

using arch::ArchKind;
using arch::RunResult;

/// Results of one architecture across the whole suite, keyed by benchmark.
using SuiteResults = std::map<std::string, RunResult>;

inline SuiteResults run_suite_map(ArchKind kind,
                                  const sim::SuiteOptions& options) {
  SuiteResults map;
  for (RunResult& result : sim::run_suite(kind, options)) {
    const std::string bench = result.workload;
    map.emplace(bench, std::move(result));
  }
  return map;
}

/// Benchmark names sorted by measured instructions per input word (the
/// paper's Fig. 3/4 x-axis ordering, Table IV top-to-bottom).
inline std::vector<std::string> sorted_benches(const SuiteResults& any) {
  std::vector<std::string> names = workloads::bmla_names();
  std::sort(names.begin(), names.end(),
            [&](const std::string& a, const std::string& b) {
              return any.at(a).insts_per_word < any.at(b).insts_per_word;
            });
  return names;
}

inline void emit(const Table& table) {
  std::printf("%s\n", table.to_string().c_str());
  std::printf("CSV:\n%s\n", table.to_csv().c_str());
}

inline void print_header(const char* what) {
  std::printf("=================================================================\n");
  std::printf("Millipede reproduction — %s\n", what);
  std::printf(
      "data volume per benchmark: %llu DRAM rows "
      "(override with MLP_BENCH_ROWS or MLP_BENCH_RECORDS)\n",
      static_cast<unsigned long long>(sim::default_rows()));
  std::printf("=================================================================\n\n");
  std::fflush(stdout);
}

}  // namespace mlp::bench
