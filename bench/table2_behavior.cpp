// Table II reproduction: application behaviour summary — input record shape,
// live-state footprint, and operations per byte — measured from the actual
// kernel binaries and a functional run (no timing model involved).

#include "bench_common.hpp"
#include "workloads/binding.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Table II: BMLA behaviour summary", harness);

  Table table("Table II — Application behaviour");
  table.set_columns({"bench", "fields/record", "state_words", "static_insts",
                     "insts/word", "ops/byte", "branch_freq", "float_ops"});

  // Functional (untimed) characterization: one pool task per benchmark.
  struct Row {
    workloads::Workload wl;
    workloads::FunctionalResult run;
  };
  sim::ThreadPool pool(harness.jobs);
  std::vector<std::future<Row>> pending;
  for (const std::string& name : workloads::bmla_names()) {
    pending.push_back(pool.submit([name] {
      workloads::WorkloadParams params;
      params.num_records = 4096;
      Row row{workloads::make_bmla(name, params), {}};
      row.run = workloads::run_functional(row.wl, 4, 2, 2048, 4096, 77);
      return row;
    }));
  }
  for (std::future<Row>& future : pending) {
    const Row row = future.get();
    const isa::StaticCounts counts = row.wl.program.static_counts();
    u32 state_words = 0;
    for (const auto& field : row.wl.state_schema) {
      state_words = std::max(state_words,
                             field.offset_words + field.count * field.stride_words);
    }
    const double words =
        static_cast<double>(row.wl.num_records) * row.wl.fields;
    table.add_row();
    table.cell(row.wl.name);
    table.cell(u64{row.wl.fields});
    table.cell(u64{state_words});
    table.cell(u64{counts.total});
    table.cell(static_cast<double>(row.run.instructions) / words, 1);
    table.cell(static_cast<double>(row.run.instructions) / (words * 4.0), 2);
    table.cell(static_cast<double>(row.run.branches) /
                   static_cast<double>(row.run.instructions),
               3);
    table.cell(u64{counts.float_ops});
  }
  emit(table);
  return 0;
}
