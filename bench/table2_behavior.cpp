// Table II reproduction: application behaviour summary — input record shape,
// live-state footprint, and operations per byte — measured from the actual
// kernel binaries and a functional run (no timing model involved).

#include "bench_common.hpp"
#include "workloads/binding.hpp"

int main() {
  using namespace mlp;
  using namespace mlp::bench;
  print_header("Table II: BMLA behaviour summary");

  Table table("Table II — Application behaviour");
  table.set_columns({"bench", "fields/record", "state_words", "static_insts",
                     "insts/word", "ops/byte", "branch_freq", "float_ops"});

  workloads::WorkloadParams params;
  params.num_records = 4096;
  for (const std::string& name : workloads::bmla_names()) {
    const workloads::Workload wl = workloads::make_bmla(name, params);
    const isa::StaticCounts counts = wl.program.static_counts();
    u32 state_words = 0;
    for (const auto& field : wl.state_schema) {
      state_words = std::max(state_words,
                             field.offset_words + field.count * field.stride_words);
    }
    const workloads::FunctionalResult run =
        workloads::run_functional(wl, 4, 2, 2048, 4096, 77);
    const double words =
        static_cast<double>(wl.num_records) * wl.fields;
    table.add_row();
    table.cell(name);
    table.cell(u64{wl.fields});
    table.cell(u64{state_words});
    table.cell(u64{counts.total});
    table.cell(static_cast<double>(run.instructions) / words, 1);
    table.cell(static_cast<double>(run.instructions) / (words * 4.0), 2);
    table.cell(static_cast<double>(run.branches) /
                   static_cast<double>(run.instructions),
               3);
    table.cell(u64{counts.float_ops});
  }
  emit(table);
  return 0;
}
