// Section IV-C's slab-interleaving ("wider columns"): storing each record's
// fields contiguously within a row makes a record touch exactly ONE DRAM
// row, so multi-field kernels run with tiny prefetch windows — the layout
// flexibility the paper credits to Millipede over the GPGPU's mandatory
// word-size columns. Field-major needs the window to cover all `fields`
// rows; slab-interleaving runs the same kernels at 4 entries.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Ablation: slab-interleaving (record-contiguous layout)",
               harness);

  Table table("Field-major vs record-contiguous layout (Millipede)");
  table.set_columns({"bench", "layout", "pf_entries", "runtime_us",
                     "fill_waits", "dram_bytes"});

  // Power-of-two field counts support the contiguous layout.
  const std::vector<std::string> benches = {"count", "classify", "kmeans",
                                            "pca", "gda"};
  std::vector<sim::MatrixJob> jobs;
  for (const std::string& bench : benches) {
    workloads::WorkloadParams probe;
    probe.num_records = 1;
    const u32 fields = workloads::make_bmla(bench, probe).fields;
    struct Case {
      bool slab;
      u32 entries;
    };
    const Case cases[] = {
        {false, std::max(16u, fields)},  // paper default window
        {true, std::max(16u, fields)},   // same window, contiguous records
        {true, 4},                        // tiny window: only possible here
    };
    for (const Case& c : cases) {
      sim::SuiteOptions options;
      options.rows = harness.rows;
      options.cfg.slab_layout = c.slab;
      options.cfg.millipede.pf_entries = c.entries;
      jobs.push_back({ArchKind::kMillipedeNoRateMatch, bench, options,
                      c.slab ? "contiguous" : "field-major"});
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs, harness);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    table.add_row();
    table.cell(jobs[i].bench);
    table.cell(jobs[i].tag);
    table.cell(u64{jobs[i].options.cfg.millipede.pf_entries});
    table.cell(static_cast<double>(r.runtime_ps) / 1e6, 1);
    table.cell(r.stats.at("pb.fill_waits"));
    table.cell(r.stats.at("dram.bytes"));
  }
  emit(table);
  std::printf("Expected: identical verified results and comparable runtimes; "
              "the contiguous layout cuts fill waits by ~an order of "
              "magnitude and still runs at a 4-entry window (8 KB of "
              "buffering), which deadlock-checks reject for field-major.\n");
  return 0;
}
