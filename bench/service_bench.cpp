// service_bench — concurrency/latency load harness for the mlpserved
// protocol: hammers one daemon with many concurrent client connections
// running a deterministic mixed request script (submit, status poll,
// result-wait, cancel, snapshot/restore) and reports throughput plus
// per-request latency percentiles. By default the daemon runs in-process on an ephemeral TCP
// port so one binary is the whole benchmark; --connect targets an external
// daemon (any transport) instead.
//
// The request script is a pure function of (client index, round), so the
// protocol-level tallies — submits, fetched results, deterministic cancel
// outcomes — are bit-identical across runs and machines; scripts/
// bench_gate.py gates on them exactly, while wall-clock numbers (jobs/sec,
// p50/p99) are trajectory-gated with a tolerance.
//
//   service_bench --profile smoke --json    # CI: reduced load, gate input
//   service_bench                           # full profile, human table
//   service_bench --connect host:7411       # load an external daemon

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/health.hpp"
#include "serve/server.hpp"
#include "trace/json.hpp"

namespace {

using namespace mlp;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string profile = "full";
  u32 clients = 0;   // 0 = profile default
  u32 rounds = 0;    // request-script rounds per client; 0 = profile default
  u32 threads = 2;   // in-process server workers
  u64 queue_limit = 64;
  u64 records = 256;  // tiny jobs: the protocol, not the simulator, is under test
  std::string connect;  // external daemon address; empty = in-process
  bool json = false;
};

/// Protocol-level tallies. All but `requests` are pure functions of
/// (clients, rounds) — queue-full retries never alter them — and are gated
/// exactly by bench_gate.py; `requests` counts every roundtrip including
/// scheduling-dependent retries, so it is reported as info, not gated.
struct Tallies {
  u64 requests = 0;        ///< total roundtrips issued (incl. retries)
  u64 submits = 0;         ///< submit requests that were finally admitted
  u64 results_done = 0;    ///< result-wait fetches that returned state=done
  u64 cancels_job_done = 0;  ///< cancels of finished jobs (typed job-done)
  u64 pings = 0;
  u64 statuses = 0;
  u64 snapshots_captured = 0;  ///< snapshot verbs that captured a blob
  u64 restores_done = 0;       ///< restore verbs that finished from a blob

  void add(const Tallies& other) {
    requests += other.requests;
    submits += other.submits;
    results_done += other.results_done;
    cancels_job_done += other.cancels_job_done;
    pings += other.pings;
    statuses += other.statuses;
    snapshots_captured += other.snapshots_captured;
    restores_done += other.restores_done;
  }
};

/// Nondeterministic observations (reported, never gated): backpressure
/// retries depend on thread scheduling.
std::atomic<u64> g_queue_full_retries{0};

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

sim::MatrixJob bench_job(const Options& opt) {
  sim::MatrixJob job;
  job.kind = arch::ArchKind::kMillipede;
  job.bench = "count";
  job.tag = "service_bench";
  job.options.records = opt.records;
  return job;
}

/// One client's deterministic script: `rounds` rounds, each a small request
/// burst chosen by (client + round) % 5. Every submitted job's result is
/// fetched with wait=true before the next round, so a client holds at most
/// one admission slot and a queue-full rejection always resolves by retry.
Tallies run_client(const Options& opt, const std::string& address, u32 client,
                   std::vector<double>* latencies_ms) {
  Tallies t;
  serve::Client c;
  c.connect(address);

  const auto timed = [&](auto&& fn) {
    const auto start = Clock::now();
    const serve::Response r = fn();
    latencies_ms->push_back(elapsed_ms(start));
    ++t.requests;
    return r;
  };

  const auto submit_admitted = [&]() -> u64 {
    const serve::JobSpec spec{bench_job(opt), 0};
    u64 backoff_ms = 1;
    for (;;) {
      const serve::Response r = timed([&] { return c.submit(spec); });
      if (r.ok) {
        ++t.submits;
        return r.doc.u64_at("id");
      }
      if (r.error == serve::kErrQueueFull) {
        // Backpressure: back off exponentially — when clients outnumber the
        // admission bound 16:1, eager 1 ms retries from every rejected
        // client starve the workers whose progress would free the slots.
        g_queue_full_retries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min<u64>(backoff_ms * 2, 64);
        continue;
      }
      std::fprintf(stderr, "service_bench: submit failed: %s: %s\n",
                   r.error.c_str(), r.message.c_str());
      std::exit(1);
    }
  };

  const auto fetch_done = [&](u64 id) {
    const serve::Response r =
        timed([&] { return c.result(id, /*wait=*/true); });
    if (r.ok && r.doc.str_at("state") == "done") ++t.results_done;
  };

  for (u32 round = 0; round < opt.rounds; ++round) {
    switch ((client + round) % 5) {
      case 0:
      case 1: {  // the common path: submit, then block on the result
        fetch_done(submit_admitted());
        break;
      }
      case 2: {  // observability path: ping + server status
        if (timed([&] { return c.ping(); }).ok) ++t.pings;
        if (timed([&] { return c.server_status(); }).ok) ++t.statuses;
        break;
      }
      case 3: {  // cancel path: cancelling a FINISHED job is deterministic
        const u64 id = submit_admitted();
        fetch_done(id);
        const serve::Response r = timed([&] { return c.cancel(id); });
        if (!r.ok && r.error == serve::kErrJobDone) ++t.cancels_job_done;
        break;
      }
      case 4: {  // protocol v2 path: capture at cycle 1 (always quiescent
                 // before the first edge, so the capture is deterministic),
                 // then finish the same job from the cached warm blob
        const serve::JobSpec spec{bench_job(opt), 0};
        const serve::Response s = timed([&] { return c.snapshot(spec, 1); });
        const trace::JsonValue* captured = s.doc.find("captured");
        if (s.ok && captured != nullptr && captured->boolean) {
          ++t.snapshots_captured;
        }
        const serve::Response r = timed([&] { return c.restore(spec, 1); });
        const trace::JsonValue* run_ok = r.doc.find("run_ok");
        if (r.ok && run_ok != nullptr && run_ok->boolean) ++t.restores_done;
        break;
      }
    }
  }
  return t;
}

void raise_fd_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
  }
}

double percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0;
  const std::size_t index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms->size() - 1) / 100.0 + 0.5);
  return (*sorted_ms)[std::min(index, sorted_ms->size() - 1)];
}

void print_json(const Options& opt, const Tallies& t, double wall_ms,
                double p50, double p99, double jobs_per_sec,
                double requests_per_sec) {
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("bench-trajectory");
  w.key("schema_version");
  w.value(u64{1});
  w.key("benchmark");
  w.value("service_bench");
  w.key("config");
  w.begin_object();
  w.key("profile");
  w.value(opt.profile);
  w.key("clients");
  w.value(u64{opt.clients});
  w.key("rounds");
  w.value(u64{opt.rounds});
  w.key("threads");
  w.value(u64{opt.threads});
  w.key("queue_limit");
  w.value(opt.queue_limit);
  w.key("records");
  w.value(opt.records);
  w.key("transport");
  w.value(opt.connect.empty() ? "tcp-inprocess" : "external");
  w.end_object();
  w.key("counters");
  w.begin_object();
  w.key("protocol_version");
  w.value(u64{serve::kProtocolVersion});
  w.key("submits");
  w.value(t.submits);
  w.key("results_done");
  w.value(t.results_done);
  w.key("cancels_job_done");
  w.value(t.cancels_job_done);
  w.key("pings");
  w.value(t.pings);
  w.key("statuses");
  w.value(t.statuses);
  w.key("snapshots_captured");
  w.value(t.snapshots_captured);
  w.key("restores_done");
  w.value(t.restores_done);
  w.end_object();
  w.key("metrics");
  w.begin_object();
  w.key("jobs_per_sec");
  w.value(jobs_per_sec);
  w.end_object();
  w.key("info");
  w.begin_object();
  w.key("requests");
  w.value(t.requests);
  w.key("requests_per_sec");
  w.value(requests_per_sec);
  w.key("wall_ms");
  w.value(wall_ms);
  w.key("p50_ms");
  w.value(p50);
  w.key("p99_ms");
  w.value(p99);
  w.key("queue_full_retries");
  w.value(g_queue_full_retries.load());
  // Fleet-resilience tallies (serve/health.hpp): zero on a healthy bench,
  // nonzero under chaos/failover experiments. Info-class — observations of
  // the run's environment, never gated.
  const serve::HealthCounters& h = serve::health_counters();
  w.key("request_timeouts");
  w.value(h.request_timeouts.load());
  w.key("chaos_injected");
  w.value(h.chaos_injected.load());
  w.key("node_deaths");
  w.value(h.node_deaths.load());
  w.key("reconnects");
  w.value(h.reconnects.load());
  w.key("failovers");
  w.value(h.failovers.load());
  w.key("retries");
  w.value(h.retries.load());
  w.end_object();
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--profile") {
      opt.profile = next();
    } else if (arg == "--clients") {
      opt.clients = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--rounds") {
      opt.rounds = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--threads") {
      opt.threads = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--queue-limit") {
      opt.queue_limit = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--records") {
      opt.records = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--connect") {
      opt.connect = next();
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "service_bench — mlpserved protocol load harness\n"
          "  --profile smoke|full   preset load shape (default full:\n"
          "                         1024 clients x 8 rounds; smoke: 32 x 8)\n"
          "  --clients N            override concurrent client connections\n"
          "  --rounds N             override request-script rounds/client\n"
          "  --threads N            in-process server workers (default 2)\n"
          "  --queue-limit N        in-process admission bound (default 64)\n"
          "  --records N            records per submitted job (default 256)\n"
          "  --connect ADDR         external daemon (Unix path or HOST:PORT)\n"
          "  --json                 bench-trajectory JSON for bench_gate.py\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (opt.profile == "smoke") {
    if (opt.clients == 0) opt.clients = 32;
    if (opt.rounds == 0) opt.rounds = 8;
  } else if (opt.profile == "full") {
    if (opt.clients == 0) opt.clients = 1024;
    if (opt.rounds == 0) opt.rounds = 8;
  } else {
    std::fprintf(stderr, "unknown profile %s (smoke|full)\n",
                 opt.profile.c_str());
    return 2;
  }
  raise_fd_limit();

  // In-process daemon on an ephemeral TCP port unless --connect names one.
  std::unique_ptr<serve::Server> server;
  std::thread server_thread;
  std::string address = opt.connect;
  if (address.empty()) {
    serve::ServeConfig cfg;
    cfg.listen_address = "127.0.0.1:0";
    cfg.threads = opt.threads;
    cfg.queue_limit = opt.queue_limit;
    server = std::make_unique<serve::Server>(cfg);
    server->listen();
    server_thread = std::thread([&] { server->run(); });
    address = server->tcp_address();
  }
  std::fprintf(stderr,
               "service_bench: %u clients x %u rounds against %s\n",
               opt.clients, opt.rounds, address.c_str());

  std::vector<Tallies> tallies(opt.clients);
  std::vector<std::vector<double>> latencies(opt.clients);
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  const auto start = Clock::now();
  for (u32 c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        tallies[c] = run_client(opt, address, c, &latencies[c]);
      } catch (const SimError& e) {
        std::fprintf(stderr, "service_bench: client %u: %s\n", c, e.what());
        std::exit(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = elapsed_ms(start);

  if (server != nullptr) {
    server->request_stop();
    server_thread.join();
  }

  Tallies total;
  std::vector<double> all_ms;
  for (u32 c = 0; c < opt.clients; ++c) {
    total.add(tallies[c]);
    all_ms.insert(all_ms.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  const double p50 = percentile(&all_ms, 50);
  const double p99 = percentile(&all_ms, 99);
  const double jobs_per_sec =
      static_cast<double>(total.submits) / (wall_ms / 1000.0);
  const double requests_per_sec =
      static_cast<double>(total.requests) / (wall_ms / 1000.0);

  if (opt.json) {
    print_json(opt, total, wall_ms, p50, p99, jobs_per_sec, requests_per_sec);
    return 0;
  }
  std::printf("profile,clients,rounds,requests,submits,results_done,"
              "cancels_job_done,pings,statuses,snapshots_captured,"
              "restores_done,wall_ms,p50_ms,p99_ms,"
              "jobs_per_sec,requests_per_sec\n");
  std::printf("%s,%u,%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%llu,%.1f,%.2f,"
              "%.2f,%.1f,%.1f\n",
              opt.profile.c_str(), opt.clients, opt.rounds,
              static_cast<unsigned long long>(total.requests),
              static_cast<unsigned long long>(total.submits),
              static_cast<unsigned long long>(total.results_done),
              static_cast<unsigned long long>(total.cancels_job_done),
              static_cast<unsigned long long>(total.pings),
              static_cast<unsigned long long>(total.statuses),
              static_cast<unsigned long long>(total.snapshots_captured),
              static_cast<unsigned long long>(total.restores_done),
              wall_ms, p50, p99, jobs_per_sec, requests_per_sec);
  return 0;
}
