// Section IV-F extension: the paper conservatively evaluates rate matching
// with frequency-only scaling, noting voltage scaling would save more. This
// ablation quantifies the headroom: core energy at nominal clock, with DFS
// rate matching, and with DFS+DVS (V tracking f, floored at 0.7 Vnom).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Ablation: rate matching with and without voltage scaling",
               harness);

  Table table("Core energy under DFS and DFS+DVS (uJ)");
  table.set_columns({"bench", "clock_MHz", "core_nominal", "core_dfs",
                     "core_dfs_dvs", "dfs_saving", "dvs_saving"});
  std::vector<sim::MatrixJob> jobs;
  sim::SuiteOptions options;
  options.rows = harness.rows;
  sim::SuiteOptions dvs_options = options;
  dvs_options.cfg.millipede.voltage_scaling = true;
  for (const std::string& bench : workloads::bmla_names()) {
    jobs.push_back({ArchKind::kMillipedeNoRateMatch, bench, options,
                    "nominal"});
    jobs.push_back({ArchKind::kMillipede, bench, options, "dfs"});
    jobs.push_back({ArchKind::kMillipede, bench, dvs_options, "dfs+dvs"});
  }
  std::map<std::string, SuiteResults> grid = run_grid(jobs, harness);
  for (const std::string& bench : workloads::bmla_names()) {
    const RunResult& nominal = grid.at("nominal").at(bench);
    const RunResult& dfs = grid.at("dfs").at(bench);
    const RunResult& dvs = grid.at("dfs+dvs").at(bench);
    table.add_row();
    table.cell(bench);
    table.cell(dfs.final_clock_mhz, 0);
    table.cell(nominal.energy.core_j * 1e6, 3);
    table.cell(dfs.energy.core_j * 1e6, 3);
    table.cell(dvs.energy.core_j * 1e6, 3);
    table.cell(1.0 - dfs.energy.core_j / nominal.energy.core_j, 3);
    table.cell(1.0 - dvs.energy.core_j / nominal.energy.core_j, 3);
  }
  emit(table);
  return 0;
}
