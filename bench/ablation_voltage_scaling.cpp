// Section IV-F extension: the paper conservatively evaluates rate matching
// with frequency-only scaling, noting voltage scaling would save more. This
// ablation quantifies the headroom: core energy at nominal clock, with DFS
// rate matching, and with DFS+DVS (V tracking f, floored at 0.7 Vnom).

#include "bench_common.hpp"

int main() {
  using namespace mlp;
  using namespace mlp::bench;
  print_header("Ablation: rate matching with and without voltage scaling");

  Table table("Core energy under DFS and DFS+DVS (uJ)");
  table.set_columns({"bench", "clock_MHz", "core_nominal", "core_dfs",
                     "core_dfs_dvs", "dfs_saving", "dvs_saving"});
  for (const std::string& bench : workloads::bmla_names()) {
    sim::SuiteOptions options;
    const RunResult nominal =
        sim::run_verified(ArchKind::kMillipedeNoRateMatch, bench, options);
    const RunResult dfs =
        sim::run_verified(ArchKind::kMillipede, bench, options);
    sim::SuiteOptions dvs_options;
    dvs_options.cfg.millipede.voltage_scaling = true;
    const RunResult dvs =
        sim::run_verified(ArchKind::kMillipede, bench, dvs_options);
    table.add_row();
    table.cell(bench);
    table.cell(dfs.final_clock_mhz, 0);
    table.cell(nominal.energy.core_j * 1e6, 3);
    table.cell(dfs.energy.core_j * 1e6, 3);
    table.cell(dvs.energy.core_j * 1e6, 3);
    table.cell(1.0 - dfs.energy.core_j / nominal.energy.core_j, 3);
    table.cell(1.0 - dvs.energy.core_j / nominal.energy.core_j, 3);
  }
  emit(table);
  return 0;
}
