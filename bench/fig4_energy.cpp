// Fig. 4 reproduction: energy of every PNM architecture normalized to the
// GPGPU, with the paper's core / DRAM / leakage stacked breakdown, including
// Millipede with and without rate matching. Paper expectation: Millipede
// ~27% below GPGPU and ~36% below SSMC; rate matching trims core energy
// ~16%; SSMC pays heavily in DRAM energy for its row misses.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Fig. 4: Energy (normalized to GPGPU, lower is better)",
               harness);

  sim::SuiteOptions options;
  options.rows = harness.rows;
  const std::vector<std::pair<std::string, ArchKind>> archs = {
      {"gpgpu", ArchKind::kGpgpu},
      {"vws", ArchKind::kVws},
      {"ssmc", ArchKind::kSsmc},
      {"vws-row", ArchKind::kVwsRow},
      {"mlp-no-rm", ArchKind::kMillipedeNoRateMatch},
      {"millipede", ArchKind::kMillipede},
  };

  std::vector<sim::MatrixJob> jobs;
  for (const auto& [name, kind] : archs) add_suite(&jobs, name, kind, options);
  std::printf("running %zu simulations...\n", jobs.size());
  std::fflush(stdout);
  std::map<std::string, SuiteResults> all = run_grid(jobs, harness);
  const std::vector<std::string> benches = sorted_benches(all["millipede"]);

  Table totals("Fig. 4 — Total energy normalized to GPGPU");
  std::vector<std::string> headers = {"bench"};
  for (const auto& [name, kind] : archs) headers.push_back(name);
  totals.set_columns(headers);
  std::map<std::string, std::vector<double>> ratios;
  for (const std::string& bench : benches) {
    const double base = all["gpgpu"].at(bench).energy.total_j();
    totals.add_row();
    totals.cell(bench);
    for (const auto& [name, kind] : archs) {
      const double ratio = all[name].at(bench).energy.total_j() / base;
      ratios[name].push_back(ratio);
      totals.cell(ratio, 2);
    }
  }
  totals.add_row();
  totals.cell(std::string("geomean"));
  for (const auto& [name, kind] : archs) {
    totals.cell(sim::geomean(ratios[name]), 2);
  }
  emit(totals);

  Table breakdown("Fig. 4 — Breakdown (uJ): core / DRAM / leakage");
  breakdown.set_columns({"bench", "arch", "core_uJ", "dram_uJ", "leak_uJ",
                         "total_uJ"});
  for (const std::string& bench : benches) {
    for (const auto& [name, kind] : archs) {
      const RunResult& r = all[name].at(bench);
      breakdown.add_row();
      breakdown.cell(bench);
      breakdown.cell(name);
      breakdown.cell(r.energy.core_j * 1e6, 3);
      breakdown.cell(r.energy.dram_j * 1e6, 3);
      breakdown.cell(r.energy.leak_j * 1e6, 3);
      breakdown.cell(r.energy.total_j() * 1e6, 3);
    }
  }
  emit(breakdown);

  // Rate-matching core-energy saving (paper: ~16%).
  std::vector<double> rm_savings;
  for (const std::string& bench : benches) {
    rm_savings.push_back(all["millipede"].at(bench).energy.core_j /
                         all["mlp-no-rm"].at(bench).energy.core_j);
  }
  std::printf("Rate matching core-energy ratio (geomean): %.3f (paper ~0.84)\n",
              sim::geomean(rm_savings));
  std::printf("Millipede vs GPGPU energy: %.0f%% lower (paper: 27%%)\n",
              (1.0 - sim::geomean(ratios["millipede"])) * 100.0);
  std::printf("Millipede vs SSMC energy:  %.0f%% lower (paper: 36%%)\n",
              (1.0 - sim::geomean(ratios["millipede"]) /
                         sim::geomean(ratios["ssmc"])) *
                  100.0);
  return 0;
}
