// Section IV-D reproduction: the paper's argument that dedicated Reduce
// communication hardware "may not be worth it" — per-node Map takes seconds,
// the host-side per-node Reduce hundreds of microseconds, and the cluster
// final Reduce tens of milliseconds. This bench reproduces that arithmetic
// from measured steady-state Map cost.

#include "bench_common.hpp"
#include "sim/node.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Section IV-D: node/cluster Reduce scale analysis", harness);

  Table table("Map vs Reduce at node and cluster scale");
  table.set_columns({"bench", "state_words", "map_s", "node_reduce_us",
                     "cluster_reduce_ms", "reduce/map"});
  sim::NodeScaleConfig node;
  sim::ThreadPool pool(harness.jobs);
  std::vector<std::future<sim::NodeScaleResult>> pending;
  for (const std::string& bench : workloads::bmla_names()) {
    pending.push_back(pool.submit([bench, node] {
      return sim::run_node_scale(bench, MachineConfig::paper_defaults(),
                                 node);
    }));
  }
  for (std::future<sim::NodeScaleResult>& future : pending) {
    const sim::NodeScaleResult r = future.get();
    table.add_row();
    table.cell(r.workload);
    table.cell(u64{r.state_words});
    table.cell(r.map_seconds, 2);
    table.cell(r.node_reduce_seconds * 1e6, 1);
    table.cell(r.cluster_reduce_seconds * 1e3, 1);
    table.cell(r.reduce_fraction(), 6);
  }
  emit(table);
  std::printf("Paper's claim: Map of tens of millions of records takes a few "
              "seconds; per-node Reduce hundreds of microseconds; cluster "
              "Reduce tens of milliseconds.\n");
  return 0;
}
