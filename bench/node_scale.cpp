// Section IV-D reproduction: the paper's argument that dedicated Reduce
// communication hardware "may not be worth it" — per-node Map takes seconds,
// the host-side per-node Reduce hundreds of microseconds, and the cluster
// final Reduce tens of milliseconds. This bench reproduces that arithmetic
// from measured steady-state Map cost.

#include "bench_common.hpp"
#include "sim/node.hpp"

int main() {
  using namespace mlp;
  using namespace mlp::bench;
  print_header("Section IV-D: node/cluster Reduce scale analysis");

  Table table("Map vs Reduce at node and cluster scale");
  table.set_columns({"bench", "state_words", "map_s", "node_reduce_us",
                     "cluster_reduce_ms", "reduce/map"});
  sim::NodeScaleConfig node;
  for (const std::string& bench : workloads::bmla_names()) {
    const sim::NodeScaleResult r = sim::run_node_scale(
        bench, MachineConfig::paper_defaults(), node);
    table.add_row();
    table.cell(bench);
    table.cell(u64{r.state_words});
    table.cell(r.map_seconds, 2);
    table.cell(r.node_reduce_seconds * 1e6, 1);
    table.cell(r.cluster_reduce_seconds * 1e3, 1);
    table.cell(r.reduce_fraction(), 6);
  }
  emit(table);
  std::printf("Paper's claim: Map of tens of millions of records takes a few "
              "seconds; per-node Reduce hundreds of microseconds; cluster "
              "Reduce tens of milliseconds.\n");
  return 0;
}
