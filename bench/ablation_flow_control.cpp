// Ablation A (Sections IV-C, VI-A): cross-corelet flow control. Compares
// Millipede with flow control against the no-flow-control variant across
// prefetch-buffer depths. Expectations: flow control never evicts
// prematurely; without it, premature evictions appear (more at shallower
// queues), lagging corelets pay direct DRAM fetches, and both performance
// and DRAM traffic suffer.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Ablation: cross-corelet flow control", harness);

  Table table("Flow control vs premature eviction vs software barriers");
  table.set_columns({"bench", "pf_entries", "variant", "runtime_us",
                     "premature_evictions", "direct_fetches", "dram_bytes"});

  struct Variant {
    const char* name;
    ArchKind kind;
    bool record_barrier;
  };
  const Variant variants[] = {
      {"flow-control", ArchKind::kMillipedeNoRateMatch, false},
      {"no-fc", ArchKind::kMillipedeNoFlowControl, false},
      // Section VI-A: MapReduce-expressible software barriers at record
      // granularity — "too infrequent to be effective".
      {"no-fc+sw-barrier", ArchKind::kMillipedeNoFlowControl, true},
  };

  // Representative subset across the instruction-weight spectrum (the full
  // suite behaves alike; the no-fc variants are slow on the heavy kernels).
  const std::vector<std::string> benches = {"count", "variance", "nbayes",
                                            "kmeans"};
  struct RowMeta {
    std::string bench;
    u32 entries;
    const char* variant;
  };
  std::vector<sim::MatrixJob> jobs;
  std::vector<RowMeta> meta;
  for (const std::string& bench : benches) {
    for (u32 entries : {8u, 16u}) {
      for (const Variant& variant : variants) {
        workloads::WorkloadParams probe;
        probe.num_records = 1;
        const u32 fields = workloads::make_bmla(bench, probe).fields;
        sim::SuiteOptions options;
        options.rows = harness.rows;
        options.record_barrier = variant.record_barrier;
        options.cfg.millipede.pf_entries = std::max(entries, fields);
        jobs.push_back({variant.kind, bench, options, variant.name});
        meta.push_back({bench, entries, variant.name});
      }
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs, harness);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    table.add_row();
    table.cell(meta[i].bench);
    table.cell(u64{meta[i].entries});
    table.cell(std::string(meta[i].variant));
    table.cell(static_cast<double>(r.runtime_ps) / 1e6, 1);
    table.cell(r.stats.at("pb.premature_evictions"));
    table.cell(r.stats.at("pb.direct_fetches"));
    table.cell(r.stats.at("dram.bytes"));
  }
  emit(table);
  return 0;
}
