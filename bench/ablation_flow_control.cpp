// Ablation A (Sections IV-C, VI-A): cross-corelet flow control. Compares
// Millipede with flow control against the no-flow-control variant across
// prefetch-buffer depths. Expectations: flow control never evicts
// prematurely; without it, premature evictions appear (more at shallower
// queues), lagging corelets pay direct DRAM fetches, and both performance
// and DRAM traffic suffer.

#include "bench_common.hpp"

int main() {
  using namespace mlp;
  using namespace mlp::bench;
  print_header("Ablation: cross-corelet flow control");

  Table table("Flow control vs premature eviction vs software barriers");
  table.set_columns({"bench", "pf_entries", "variant", "runtime_us",
                     "premature_evictions", "direct_fetches", "dram_bytes"});

  struct Variant {
    const char* name;
    ArchKind kind;
    bool record_barrier;
  };
  const Variant variants[] = {
      {"flow-control", ArchKind::kMillipedeNoRateMatch, false},
      {"no-fc", ArchKind::kMillipedeNoFlowControl, false},
      // Section VI-A: MapReduce-expressible software barriers at record
      // granularity — "too infrequent to be effective".
      {"no-fc+sw-barrier", ArchKind::kMillipedeNoFlowControl, true},
  };

  // Representative subset across the instruction-weight spectrum (the full
  // suite behaves alike; the no-fc variants are slow on the heavy kernels).
  const std::vector<std::string> benches = {"count", "variance", "nbayes",
                                            "kmeans"};
  for (const std::string& bench : benches) {
    for (u32 entries : {8u, 16u}) {
      for (const Variant& variant : variants) {
        workloads::WorkloadParams params;
        params.num_records =
            sim::records_for(bench, MachineConfig::paper_defaults());
        params.record_barrier = variant.record_barrier;
        const workloads::Workload wl = workloads::make_bmla(bench, params);
        MachineConfig cfg = MachineConfig::paper_defaults();
        cfg.millipede.pf_entries = std::max(entries, wl.fields);
        const RunResult r = arch::run_arch(variant.kind, cfg, wl);
        MLP_CHECK(r.verification.empty(), "verification failed");
        table.add_row();
        table.cell(bench);
        table.cell(u64{entries});
        table.cell(std::string(variant.name));
        table.cell(static_cast<double>(r.runtime_ps) / 1e6, 1);
        table.cell(r.stats.at("pb.premature_evictions"));
        table.cell(r.stats.at("pb.direct_fetches"));
        table.cell(r.stats.at("dram.bytes"));
      }
    }
  }
  emit(table);
  return 0;
}
