// Fig. 5 reproduction: Millipede versus a conventional multicore (8 OoO-class
// cores at 3.6 GHz with a deep cache hierarchy and quarter-bandwidth off-chip
// DRAM at 70 pJ/bit). Paper expectation: very large speedups and energy
// gains, dominated by thread count and off-chip memory energy — a technology
// comparison the paper itself caveats (Section VI-C).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Fig. 5: Millipede vs conventional multicore", harness);

  sim::SuiteOptions options;
  options.rows = harness.rows;
  std::vector<sim::MatrixJob> jobs;
  add_suite(&jobs, "millipede", ArchKind::kMillipede, options);
  add_suite(&jobs, "multicore", ArchKind::kMulticore, options);
  std::printf("running %zu simulations...\n", jobs.size());
  std::fflush(stdout);
  std::map<std::string, SuiteResults> all = run_grid(jobs, harness);
  SuiteResults& mlp_results = all.at("millipede");
  SuiteResults& mc_results = all.at("multicore");

  const std::vector<std::string> benches = sorted_benches(mlp_results);

  // The paper compares a full NODE — 32 Millipede processors (4096 threads),
  // each with its own die-stacked channel, working on disjoint shards — to
  // one 8-core multicore. Processors are independent, so the node's runtime
  // on the same data volume is the single-processor runtime divided by 32;
  // node energy on that volume equals the single-processor energy (same
  // work, same joules, 32x the leakage power for 1/32 the time).
  constexpr double kNodeProcessors = 32.0;

  Table table("Fig. 5 — Millipede node (32 processors) vs multicore");
  table.set_columns({"bench", "speedup", "energy_ratio", "energy_delay_x"});
  std::vector<double> speedups, eratios, eds;
  for (const std::string& bench : benches) {
    const RunResult& m = mlp_results.at(bench);
    const RunResult& c = mc_results.at(bench);
    const double speedup = static_cast<double>(c.runtime_ps) /
                           (static_cast<double>(m.runtime_ps) /
                            kNodeProcessors);
    const double eratio = c.energy.total_j() / m.energy.total_j();
    const double ed = c.energy_delay() /
                      (m.energy.total_j() * m.seconds() / kNodeProcessors);
    speedups.push_back(speedup);
    eratios.push_back(eratio);
    eds.push_back(ed);
    table.add_row();
    table.cell(bench);
    table.cell(speedup, 2);
    table.cell(eratio, 2);
    table.cell(ed, 1);
  }
  table.add_row();
  table.cell(std::string("geomean"));
  table.cell(sim::geomean(speedups), 2);
  table.cell(sim::geomean(eratios), 2);
  table.cell(sim::geomean(eds), 1);
  emit(table);

  std::printf("Energy-delay improvement (geomean): %.1fx (paper: ~125x)\n",
              sim::geomean(eds));
  return 0;
}
