// kernel_bench — A/B harness for the simulation kernel's wall-clock
// optimisations: runs a curated set of (architecture, benchmark, config)
// points in three modes — edge polling (no fast-forward), fast-forward, and
// fast-forward with the decoded-block cache disabled — asserts that every
// counter and metric is bit-identical across all modes, and reports both
// wall-clock wins. Points marked "membound" stall globally on DRAM and are
// where the event-driven skip pays off; compute-bound points are where the
// decoded-block dispatch pays off (and bound the scan overhead).
//
//   kernel_bench                  # full point list, 3 reps each
//   kernel_bench --rows 24 --reps 1   # CI smoke: equivalence only
//   kernel_bench --arch multicore --bench count

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/prepare.hpp"
#include "sim/runner.hpp"
#include "trace/json.hpp"

namespace {

using namespace mlp;

struct Point {
  const char* arch;
  const char* bench;
  const char* tag;             // CSV label; "membound" marks DRAM-bound points
  double bus_efficiency = 0;   // 0 = keep the paper default
  const char* refresh = nullptr;  // DramConfig::refresh spec; null = off
};

// The four architectures under their paper configs, plus memory-bound
// variants (off-chip-class bus efficiency) where both domains spend most
// edges globally idle waiting on in-flight transfers, and a compute-bound
// variant (near-ideal bus on the float-heaviest kernel) where interpreter
// dispatch dominates wall-clock — the block-cache showcase point.
const Point kPoints[] = {
    {"millipede", "count", "default"},
    {"ssmc", "count", "default"},
    {"gpgpu", "count", "default"},
    {"multicore", "count", "default"},
    {"millipede", "kmeans", "default"},
    {"multicore", "count", "membound", 0.05},
    {"ssmc", "count", "membound", 0.05},
    {"millipede", "pca", "compute", 0.9},
    // JEDEC-cadence refresh on the heaviest default point: measures the
    // per-rank cursor bookkeeping the high-fidelity DRAM model adds to the
    // simulation loop (and keeps it on the perf trajectory).
    {"millipede", "count", "refresh", 0, "on"},
};

double run_timed_ms(const sim::MatrixJob& job, sim::PrepareCache* cache,
                    u32 reps, arch::RunResult* out) {
  double best = 0;
  for (u32 r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    sim::MatrixResult res = sim::run_job(job, cache);
    const auto stop = std::chrono::steady_clock::now();
    if (!res.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s: %s\n",
                   arch::arch_name(job.kind), job.bench.c_str(),
                   res.error.c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (r == 0 || ms < best) best = ms;
    *out = std::move(res.result);
  }
  return best;
}

/// Hard equivalence gate: a simulator-speed mode must not change a single
/// number. `a_name`/`b_name` label the two modes in the failure report.
void check_identical(const Point& p, const char* a_name,
                     const arch::RunResult& a, const char* b_name,
                     const arch::RunResult& b) {
  bool same = a.compute_cycles == b.compute_cycles &&
              a.runtime_ps == b.runtime_ps &&
              a.thread_instructions == b.thread_instructions &&
              a.final_clock_mhz == b.final_clock_mhz && a.stats == b.stats;
  if (same) return;
  std::fprintf(stderr, "EQUIVALENCE FAILURE %s/%s (%s) %s vs %s:\n", p.arch,
               p.bench, p.tag, a_name, b_name);
  if (a.compute_cycles != b.compute_cycles) {
    std::fprintf(stderr, "  compute_cycles: %s=%llu %s=%llu\n", a_name,
                 static_cast<unsigned long long>(a.compute_cycles), b_name,
                 static_cast<unsigned long long>(b.compute_cycles));
  }
  if (a.runtime_ps != b.runtime_ps) {
    std::fprintf(stderr, "  runtime_ps: %s=%llu %s=%llu\n", a_name,
                 static_cast<unsigned long long>(a.runtime_ps), b_name,
                 static_cast<unsigned long long>(b.runtime_ps));
  }
  for (const auto& [key, value] : a.stats) {
    const auto it = b.stats.find(key);
    if (it == b.stats.end()) {
      std::fprintf(stderr, "  %s: missing under %s\n", key.c_str(), b_name);
    } else if (it->second != value) {
      std::fprintf(stderr, "  %s: %s=%llu %s=%llu\n", key.c_str(), a_name,
                   static_cast<unsigned long long>(value), b_name,
                   static_cast<unsigned long long>(it->second));
    }
  }
  for (const auto& [key, value] : b.stats) {
    if (a.stats.find(key) == a.stats.end()) {
      std::fprintf(stderr, "  %s: new under %s\n", key.c_str(), b_name);
    }
  }
  std::exit(1);
}

/// One measured point, kept for the --json trajectory document.
struct Measured {
  std::string name;  // arch/bench/tag
  double poll_ms = 0;
  double ff_ms = 0;
  double nc_ms = 0;  // fast-forward on, decoded-block cache off
  arch::RunResult result;  // bit-identical between modes by the gate above
};

/// bench-trajectory document for scripts/bench_gate.py: the wall-clock
/// ratio (machine-portable) is the gated metric, per-point simulation
/// counters are gated exactly, raw milliseconds ride along as info.
void print_json(u64 rows, u32 reps, const std::vector<Measured>& points) {
  double log_sum = 0, cache_log_sum = 0;
  double total_poll = 0, total_ff = 0, total_nc = 0;
  for (const Measured& m : points) {
    log_sum += std::log(m.poll_ms / m.ff_ms);
    cache_log_sum += std::log(m.nc_ms / m.ff_ms);
    total_poll += m.poll_ms;
    total_ff += m.ff_ms;
    total_nc += m.nc_ms;
  }
  const double geomean =
      points.empty() ? 1.0
                     : std::exp(log_sum / static_cast<double>(points.size()));
  const double cache_geomean =
      points.empty()
          ? 1.0
          : std::exp(cache_log_sum / static_cast<double>(points.size()));
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("bench-trajectory");
  w.key("schema_version");
  w.value(u64{1});
  w.key("benchmark");
  w.value("kernel_bench");
  w.key("config");
  w.begin_object();
  w.key("rows");
  w.value(rows);
  w.key("reps");
  w.value(u64{reps});
  w.end_object();
  w.key("counters");
  w.begin_object();
  w.key("points");
  w.value(static_cast<u64>(points.size()));
  w.end_object();
  w.key("metrics");
  w.begin_object();
  w.key("geomean_block_cache_speedup");
  w.value(cache_geomean);
  w.key("geomean_speedup");
  w.value(geomean);
  w.end_object();
  w.key("info");
  w.begin_object();
  w.key("total_ff_ms");
  w.value(total_ff);
  w.key("total_nc_ms");
  w.value(total_nc);
  w.key("total_poll_ms");
  w.value(total_poll);
  w.end_object();
  w.key("points");
  w.begin_array();
  for (const Measured& m : points) {
    w.begin_object();
    w.key("name");
    w.value(m.name);
    auto stat = [&m](const char* name) -> u64 {
      const auto it = m.result.stats.find(name);
      return it == m.result.stats.end() ? 0 : it->second;
    };
    w.key("counters");
    w.begin_object();
    w.key("compute_cycles");
    w.value(m.result.compute_cycles);
    w.key("decode.batched_lanes");
    w.value(stat("decode.batched_lanes"));
    w.key("decode.block_hits");
    w.value(stat("decode.block_hits"));
    w.key("decode.block_misses");
    w.value(stat("decode.block_misses"));
    w.key("runtime_ps");
    w.value(m.result.runtime_ps);
    w.key("thread_instructions");
    w.value(m.result.thread_instructions);
    w.end_object();
    w.key("info");
    w.begin_object();
    w.key("block_cache_speedup");
    w.value(m.nc_ms / m.ff_ms);
    w.key("ff_ms");
    w.value(m.ff_ms);
    w.key("nc_ms");
    w.value(m.nc_ms);
    w.key("poll_ms");
    w.value(m.poll_ms);
    w.key("speedup");
    w.value(m.poll_ms / m.ff_ms);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  u64 rows = 96;
  u32 reps = 3;
  bool json = false;
  std::string arch_filter, bench_filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rows") {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--reps") {
      reps = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--arch") {
      arch_filter = next();
    } else if (arg == "--bench") {
      bench_filter = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "kernel_bench — fast-forward / decoded-block-cache A/B harness\n"
          "  --rows N    data volume in DRAM rows   (default 96)\n"
          "  --reps N    timed repetitions per mode (default 3; min is "
          "reported)\n"
          "  --arch NAME / --bench NAME   restrict the point list\n"
          "  --json      bench-trajectory JSON for scripts/bench_gate.py\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (rows == 0 || reps == 0) {
    std::fprintf(stderr, "--rows and --reps must be positive\n");
    return 2;
  }

  // One warm cache for everything: fast_forward and block_cache are
  // deliberately not part of the preparation key, so all modes (and all
  // reps) share one prepared input and the timings measure the simulation
  // loop alone.
  sim::PrepareCache cache;

  std::vector<Measured> measured;
  if (!json) {
    std::printf(
        "arch,bench,tag,rows,poll_ms,ff_ms,nc_ms,speedup,cache_speedup\n");
  }
  for (const Point& p : kPoints) {
    if (!arch_filter.empty() && arch_filter != p.arch) continue;
    if (!bench_filter.empty() && bench_filter != p.bench) continue;

    sim::MatrixJob job;
    if (!arch::arch_from_name(p.arch, &job.kind)) {
      std::fprintf(stderr, "unknown architecture %s\n", p.arch);
      return 2;
    }
    job.bench = p.bench;
    job.tag = p.tag;
    job.options.rows = rows;
    if (p.bus_efficiency > 0) {
      job.options.cfg.dram.bus_efficiency = p.bus_efficiency;
    }
    if (p.refresh) {
      job.options.cfg.dram.refresh = p.refresh;
    }

    sim::MatrixJob poll_job = job;
    poll_job.options.cfg.fast_forward = false;
    sim::MatrixJob nc_job = job;
    nc_job.options.cfg.block_cache = false;

    // Warm the prepare cache outside the timed region.
    arch::RunResult poll, ff, nc;
    run_timed_ms(poll_job, &cache, 1, &poll);

    const double poll_ms = run_timed_ms(poll_job, &cache, reps, &poll);
    const double ff_ms = run_timed_ms(job, &cache, reps, &ff);
    const double nc_ms = run_timed_ms(nc_job, &cache, reps, &nc);
    check_identical(p, "poll", poll, "ff", ff);
    check_identical(p, "ff", ff, "no-block-cache", nc);

    if (json) {
      Measured m;
      m.name = std::string(p.arch) + "/" + p.bench + "/" + p.tag;
      m.poll_ms = poll_ms;
      m.ff_ms = ff_ms;
      m.nc_ms = nc_ms;
      m.result = std::move(ff);
      measured.push_back(std::move(m));
      continue;
    }
    std::printf("%s,%s,%s,%llu,%.1f,%.1f,%.1f,%.2f,%.2f\n", p.arch, p.bench,
                p.tag, static_cast<unsigned long long>(rows), poll_ms, ff_ms,
                nc_ms, poll_ms / ff_ms, nc_ms / ff_ms);
    std::fflush(stdout);
  }
  if (json) print_json(rows, reps, measured);
  return 0;
}
