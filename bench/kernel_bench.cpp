// kernel_bench — A/B harness for the simulation kernel's idle-cycle
// fast-forward: runs a curated set of (architecture, benchmark, config)
// points twice, with fast-forward enabled and disabled, asserts that every
// counter and metric is bit-identical between the two modes, and reports
// the wall-clock win. Points marked "membound" stall globally on DRAM and
// are where the event-driven skip is expected to pay off; compute-bound
// points bound the scan overhead instead.
//
//   kernel_bench                  # full point list, 3 reps each
//   kernel_bench --rows 24 --reps 1   # CI smoke: equivalence only
//   kernel_bench --arch multicore --bench count

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/prepare.hpp"
#include "sim/runner.hpp"
#include "trace/json.hpp"

namespace {

using namespace mlp;

struct Point {
  const char* arch;
  const char* bench;
  const char* tag;             // CSV label; "membound" marks DRAM-bound points
  double bus_efficiency = 0;   // 0 = keep the paper default
};

// The four architectures under their paper configs, plus memory-bound
// variants (off-chip-class bus efficiency) where both domains spend most
// edges globally idle waiting on in-flight transfers.
const Point kPoints[] = {
    {"millipede", "count", "default"},
    {"ssmc", "count", "default"},
    {"gpgpu", "count", "default"},
    {"multicore", "count", "default"},
    {"millipede", "kmeans", "default"},
    {"multicore", "count", "membound", 0.05},
    {"ssmc", "count", "membound", 0.05},
};

double run_timed_ms(const sim::MatrixJob& job, sim::PrepareCache* cache,
                    u32 reps, arch::RunResult* out) {
  double best = 0;
  for (u32 r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    sim::MatrixResult res = sim::run_job(job, cache);
    const auto stop = std::chrono::steady_clock::now();
    if (!res.ok()) {
      std::fprintf(stderr, "RUN FAILED %s/%s: %s\n",
                   arch::arch_name(job.kind), job.bench.c_str(),
                   res.error.c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (r == 0 || ms < best) best = ms;
    *out = std::move(res.result);
  }
  return best;
}

/// Hard equivalence gate: fast-forward must not change a single number.
void check_identical(const Point& p, const arch::RunResult& poll,
                     const arch::RunResult& ff) {
  bool same = poll.compute_cycles == ff.compute_cycles &&
              poll.runtime_ps == ff.runtime_ps &&
              poll.thread_instructions == ff.thread_instructions &&
              poll.final_clock_mhz == ff.final_clock_mhz &&
              poll.stats == ff.stats;
  if (same) return;
  std::fprintf(stderr, "EQUIVALENCE FAILURE %s/%s (%s):\n", p.arch, p.bench,
               p.tag);
  if (poll.compute_cycles != ff.compute_cycles) {
    std::fprintf(stderr, "  compute_cycles: poll=%llu ff=%llu\n",
                 static_cast<unsigned long long>(poll.compute_cycles),
                 static_cast<unsigned long long>(ff.compute_cycles));
  }
  if (poll.runtime_ps != ff.runtime_ps) {
    std::fprintf(stderr, "  runtime_ps: poll=%llu ff=%llu\n",
                 static_cast<unsigned long long>(poll.runtime_ps),
                 static_cast<unsigned long long>(ff.runtime_ps));
  }
  for (const auto& [key, value] : poll.stats) {
    const auto it = ff.stats.find(key);
    if (it == ff.stats.end()) {
      std::fprintf(stderr, "  %s: missing under fast-forward\n", key.c_str());
    } else if (it->second != value) {
      std::fprintf(stderr, "  %s: poll=%llu ff=%llu\n", key.c_str(),
                   static_cast<unsigned long long>(value),
                   static_cast<unsigned long long>(it->second));
    }
  }
  for (const auto& [key, value] : ff.stats) {
    if (poll.stats.find(key) == poll.stats.end()) {
      std::fprintf(stderr, "  %s: new under fast-forward\n", key.c_str());
    }
  }
  std::exit(1);
}

/// One measured point, kept for the --json trajectory document.
struct Measured {
  std::string name;  // arch/bench/tag
  double poll_ms = 0;
  double ff_ms = 0;
  arch::RunResult result;  // bit-identical between modes by the gate above
};

/// bench-trajectory document for scripts/bench_gate.py: the wall-clock
/// ratio (machine-portable) is the gated metric, per-point simulation
/// counters are gated exactly, raw milliseconds ride along as info.
void print_json(u64 rows, u32 reps, const std::vector<Measured>& points) {
  double log_sum = 0, total_poll = 0, total_ff = 0;
  for (const Measured& m : points) {
    log_sum += std::log(m.poll_ms / m.ff_ms);
    total_poll += m.poll_ms;
    total_ff += m.ff_ms;
  }
  const double geomean =
      points.empty() ? 1.0
                     : std::exp(log_sum / static_cast<double>(points.size()));
  trace::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.value("bench-trajectory");
  w.key("schema_version");
  w.value(u64{1});
  w.key("benchmark");
  w.value("kernel_bench");
  w.key("config");
  w.begin_object();
  w.key("rows");
  w.value(rows);
  w.key("reps");
  w.value(u64{reps});
  w.end_object();
  w.key("counters");
  w.begin_object();
  w.key("points");
  w.value(static_cast<u64>(points.size()));
  w.end_object();
  w.key("metrics");
  w.begin_object();
  w.key("geomean_speedup");
  w.value(geomean);
  w.end_object();
  w.key("info");
  w.begin_object();
  w.key("total_poll_ms");
  w.value(total_poll);
  w.key("total_ff_ms");
  w.value(total_ff);
  w.end_object();
  w.key("points");
  w.begin_array();
  for (const Measured& m : points) {
    w.begin_object();
    w.key("name");
    w.value(m.name);
    w.key("counters");
    w.begin_object();
    w.key("compute_cycles");
    w.value(m.result.compute_cycles);
    w.key("runtime_ps");
    w.value(m.result.runtime_ps);
    w.key("thread_instructions");
    w.value(m.result.thread_instructions);
    w.end_object();
    w.key("info");
    w.begin_object();
    w.key("speedup");
    w.value(m.poll_ms / m.ff_ms);
    w.key("poll_ms");
    w.value(m.poll_ms);
    w.key("ff_ms");
    w.value(m.ff_ms);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  u64 rows = 96;
  u32 reps = 3;
  bool json = false;
  std::string arch_filter, bench_filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--rows") {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--reps") {
      reps = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--arch") {
      arch_filter = next();
    } else if (arg == "--bench") {
      bench_filter = next();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "kernel_bench — fast-forward vs edge-polling A/B harness\n"
          "  --rows N    data volume in DRAM rows   (default 96)\n"
          "  --reps N    timed repetitions per mode (default 3; min is "
          "reported)\n"
          "  --arch NAME / --bench NAME   restrict the point list\n"
          "  --json      bench-trajectory JSON for scripts/bench_gate.py\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (rows == 0 || reps == 0) {
    std::fprintf(stderr, "--rows and --reps must be positive\n");
    return 2;
  }

  // One warm cache for everything: fast_forward is deliberately not part of
  // the preparation key, so both modes (and all reps) share one prepared
  // input and the timings measure the simulation loop alone.
  sim::PrepareCache cache;

  std::vector<Measured> measured;
  if (!json) std::printf("arch,bench,tag,rows,poll_ms,ff_ms,speedup\n");
  for (const Point& p : kPoints) {
    if (!arch_filter.empty() && arch_filter != p.arch) continue;
    if (!bench_filter.empty() && bench_filter != p.bench) continue;

    sim::MatrixJob job;
    if (!arch::arch_from_name(p.arch, &job.kind)) {
      std::fprintf(stderr, "unknown architecture %s\n", p.arch);
      return 2;
    }
    job.bench = p.bench;
    job.tag = p.tag;
    job.options.rows = rows;
    if (p.bus_efficiency > 0) {
      job.options.cfg.dram.bus_efficiency = p.bus_efficiency;
    }

    sim::MatrixJob poll_job = job;
    poll_job.options.cfg.fast_forward = false;

    // Warm the prepare cache outside the timed region.
    arch::RunResult poll, ff;
    run_timed_ms(poll_job, &cache, 1, &poll);

    const double poll_ms = run_timed_ms(poll_job, &cache, reps, &poll);
    const double ff_ms = run_timed_ms(job, &cache, reps, &ff);
    check_identical(p, poll, ff);

    if (json) {
      Measured m;
      m.name = std::string(p.arch) + "/" + p.bench + "/" + p.tag;
      m.poll_ms = poll_ms;
      m.ff_ms = ff_ms;
      m.result = std::move(ff);
      measured.push_back(std::move(m));
      continue;
    }
    std::printf("%s,%s,%s,%llu,%.1f,%.1f,%.2f\n", p.arch, p.bench, p.tag,
                static_cast<unsigned long long>(rows), poll_ms, ff_ms,
                poll_ms / ff_ms);
    std::fflush(stdout);
  }
  if (json) print_json(rows, reps, measured);
  return 0;
}
