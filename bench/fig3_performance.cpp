// Fig. 3 reproduction: performance of GPGPU, VWS, SSMC, VWS-row,
// Millipede-no-flow-control and Millipede, normalized to the GPGPU
// (with cache-block prefetch), across the eight BMLAs sorted by
// instructions per input word. Paper expectation: Millipede ~2.35x GPGPU
// and ~1.35x SSMC on average; its edge over GPGPU shrinks left-to-right
// (branch frequency falls) while its edge over SSMC grows (row-miss
// exposure rises), except the compute-heavy pca/gda tail.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Fig. 3: Performance (normalized to GPGPU, higher is better)",
               harness);

  sim::SuiteOptions options;
  options.rows = harness.rows;
  const std::vector<std::pair<std::string, ArchKind>> archs = {
      {"gpgpu", ArchKind::kGpgpu},
      {"vws", ArchKind::kVws},
      {"ssmc", ArchKind::kSsmc},
      {"vws-row", ArchKind::kVwsRow},
      {"mlp-no-fc", ArchKind::kMillipedeNoFlowControl},
      {"millipede", ArchKind::kMillipede},
  };

  std::vector<sim::MatrixJob> jobs;
  for (const auto& [name, kind] : archs) add_suite(&jobs, name, kind, options);
  std::printf("running %zu simulations...\n", jobs.size());
  std::fflush(stdout);
  std::map<std::string, SuiteResults> all = run_grid(jobs, harness);

  const std::vector<std::string> benches = sorted_benches(all["millipede"]);

  Table table("Fig. 3 — Speedup over GPGPU");
  std::vector<std::string> headers = {"bench", "insts/word"};
  for (const auto& [name, kind] : archs) headers.push_back(name);
  table.set_columns(headers);

  std::map<std::string, std::vector<double>> speedups;
  for (const std::string& bench : benches) {
    const double base =
        static_cast<double>(all["gpgpu"].at(bench).runtime_ps);
    table.add_row();
    table.cell(bench);
    table.cell(all["millipede"].at(bench).insts_per_word, 1);
    for (const auto& [name, kind] : archs) {
      const double speedup =
          base / static_cast<double>(all[name].at(bench).runtime_ps);
      speedups[name].push_back(speedup);
      table.cell(speedup, 2);
    }
  }
  table.add_row();
  table.cell(std::string("geomean"));
  table.cell(std::string("-"));
  for (const auto& [name, kind] : archs) {
    table.cell(sim::geomean(speedups[name]), 2);
  }
  emit(table);

  const double mlp_gain = sim::geomean(speedups["millipede"]);
  const double ssmc_gain = sim::geomean(speedups["ssmc"]);
  std::printf("Millipede vs GPGPU: +%.0f%% (paper: +135%%)\n",
              (mlp_gain - 1.0) * 100.0);
  std::printf("Millipede vs SSMC:  +%.0f%% (paper: +35%%)\n",
              (mlp_gain / ssmc_gain - 1.0) * 100.0);
  return 0;
}
