// Simulator micro-benchmarks (google-benchmark): throughput of the hot
// components — assembler, functional executor, DRAM controller, prefetch
// buffer, and a full small Millipede run. Useful for keeping the simulator
// itself fast enough for large sweeps.

#include <benchmark/benchmark.h>

#include "arch/system.hpp"
#include "isa/assembler.hpp"
#include "sim/runner.hpp"
#include "workloads/binding.hpp"
#include "workloads/bmla.hpp"

namespace {

using namespace mlp;

void BM_Assemble(benchmark::State& state) {
  workloads::WorkloadParams params;
  params.num_records = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workloads::make_bmla("nbayes", params));
  }
}
BENCHMARK(BM_Assemble);

void BM_FunctionalExecution(benchmark::State& state) {
  workloads::WorkloadParams params;
  params.num_records = 2048;
  const workloads::Workload wl = workloads::make_bmla("count", params);
  u64 instructions = 0;
  for (auto _ : state) {
    const auto result = workloads::run_functional(wl, 4, 2, 2048, 4096, 1);
    instructions += result.instructions;
    benchmark::DoNotOptimize(result.instructions);
  }
  state.counters["insts/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution);

void BM_ControllerStreaming(benchmark::State& state) {
  const DramConfig cfg = MachineConfig::paper_defaults().dram;
  u64 rows = 0;
  for (auto _ : state) {
    StatSet stats;
    mem::ChannelDemux ctrl(cfg, "dram", &stats);
    Picos now = 0;
    u64 issued = 0;
    u64 done = 0;
    while (done < 512) {
      if (issued < 512) {
        mem::MemRequest req;
        req.addr = issued * 2048;
        req.bytes = 2048;
        req.on_complete = [&done](Picos) { ++done; };
        if (ctrl.try_push(std::move(req), now)) ++issued;
      }
      ctrl.tick(now);
      now += cfg.period_ps();
    }
    rows += done;
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(rows), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ControllerStreaming);

void BM_MillipedeEndToEnd(benchmark::State& state) {
  workloads::WorkloadParams params;
  params.num_records = 4096;
  const workloads::Workload wl = workloads::make_bmla("count", params);
  u64 cycles = 0;
  for (auto _ : state) {
    const arch::RunResult r = arch::run_arch(
        arch::ArchKind::kMillipede, MachineConfig::paper_defaults(), wl);
    MLP_CHECK(r.verification.empty(), "verification failed");
    cycles += r.compute_cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MillipedeEndToEnd);

void BM_GpgpuEndToEnd(benchmark::State& state) {
  workloads::WorkloadParams params;
  params.num_records = 4096;
  const workloads::Workload wl = workloads::make_bmla("count", params);
  for (auto _ : state) {
    const arch::RunResult r = arch::run_arch(
        arch::ArchKind::kGpgpu, MachineConfig::paper_defaults(), wl);
    MLP_CHECK(r.verification.empty(), "verification failed");
    benchmark::DoNotOptimize(r.compute_cycles);
  }
}
BENCHMARK(BM_GpgpuEndToEnd);

// Full-suite matrix throughput at 1..N pool threads: how well the harness
// fills the machine with independent simulations (Arg = thread count).
void BM_RunMatrix(benchmark::State& state) {
  std::vector<sim::MatrixJob> jobs;
  for (const std::string& bench : workloads::bmla_names()) {
    sim::MatrixJob job;
    job.bench = bench;
    job.options.records = 4096;
    jobs.push_back(std::move(job));
  }
  const u32 threads = static_cast<u32>(state.range(0));
  u64 cycles = 0;
  for (auto _ : state) {
    const auto results = sim::run_matrix(jobs, threads);
    for (const sim::MatrixResult& r : results) {
      MLP_CHECK(r.ok(), r.error.c_str());
      cycles += r.result.compute_cycles;
    }
    benchmark::DoNotOptimize(results.size());
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RunMatrix)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
