// Ablation C (Section V): steady-state insensitivity to input size. The
// paper limits inputs to 128 MB arguing BMLAs behave identically once past
// steady state; here, per-record cycle cost must be flat across a 16x input
// range for all architectures.

#include "bench_common.hpp"

int main() {
  using namespace mlp;
  using namespace mlp::bench;
  print_header("Ablation: input-size steady state");

  Table table("Cycles per record vs input size");
  table.set_columns({"bench", "arch", "rows", "records", "ps_per_record"});

  for (const std::string& bench : {std::string("count"), std::string("nbayes")}) {
    for (const ArchKind kind :
         {ArchKind::kMillipede, ArchKind::kGpgpu, ArchKind::kSsmc}) {
      double first = 0.0;
      for (u64 rows : {48ull, 96ull, 192ull, 384ull, 768ull}) {
        sim::SuiteOptions options;
        workloads::WorkloadParams probe;
        probe.num_records = 1;
        const u32 fields = workloads::make_bmla(bench, probe).fields;
        options.records = std::max<u64>(1, rows / fields) * 512;
        const RunResult r = sim::run_verified(kind, bench, options);
        const double per_record = static_cast<double>(r.runtime_ps) /
                                  static_cast<double>(r.input_words / fields);
        if (first == 0.0) first = per_record;
        table.add_row();
        table.cell(bench);
        table.cell(r.arch);
        table.cell(u64{rows});
        table.cell(u64{options.records});
        table.cell(per_record, 1);
      }
    }
  }
  emit(table);
  std::printf("Expected: ps/record flat (within a few %%) beyond the smallest "
              "sizes, for every architecture.\n");
  return 0;
}
