// Ablation C (Section V): steady-state insensitivity to input size. The
// paper limits inputs to 128 MB arguing BMLAs behave identically once past
// steady state; here, per-record cycle cost must be flat across a 16x input
// range for all architectures.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Ablation: input-size steady state", harness);

  Table table("Cycles per record vs input size");
  table.set_columns({"bench", "arch", "rows", "records", "ps_per_record"});

  struct RowMeta {
    std::string bench;
    u32 fields;
    u64 rows;
  };
  std::vector<sim::MatrixJob> jobs;
  std::vector<RowMeta> meta;
  for (const std::string& bench : {std::string("count"), std::string("nbayes")}) {
    for (const ArchKind kind :
         {ArchKind::kMillipede, ArchKind::kGpgpu, ArchKind::kSsmc}) {
      for (u64 rows : {48ull, 96ull, 192ull, 384ull, 768ull}) {
        sim::SuiteOptions options;
        workloads::WorkloadParams probe;
        probe.num_records = 1;
        const u32 fields = workloads::make_bmla(bench, probe).fields;
        options.records = std::max<u64>(1, rows / fields) * 512;
        jobs.push_back({kind, bench, options, /*tag=*/""});
        meta.push_back({bench, fields, rows});
      }
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs, harness);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const double per_record =
        static_cast<double>(r.runtime_ps) /
        static_cast<double>(r.input_words / meta[i].fields);
    table.add_row();
    table.cell(meta[i].bench);
    table.cell(r.arch);
    table.cell(u64{meta[i].rows});
    table.cell(jobs[i].options.records);
    table.cell(per_record, 1);
  }
  emit(table);
  std::printf("Expected: ps/record flat (within a few %%) beyond the smallest "
              "sizes, for every architecture.\n");
  return 0;
}
