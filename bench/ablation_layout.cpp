// Ablation B (Section III-B): record-to-thread mapping granularity on the
// GPGPU. With word-size columns (the paper's "GPGPUs must use word-size
// columns to achieve coalesceable accesses"), a warp's lanes read
// consecutive words and coalesce into 1-2 cache lines; with corelet-style
// 64 B slab columns the same warp touches 16 lines per load, multiplying L1
// traffic and degrading effective bandwidth.

#include "bench_common.hpp"

int main() {
  using namespace mlp;
  using namespace mlp::bench;
  print_header("Ablation: interleaved-layout column width on the GPGPU");

  Table table("Word-interleaved vs slab mapping (GPGPU)");
  table.set_columns({"bench", "mapping", "runtime_us", "lines_per_load_warp",
                     "dram_row_miss_rate"});

  for (const std::string& bench :
       {std::string("count"), std::string("nbayes"), std::string("kmeans")}) {
    for (const bool slab : {false, true}) {
      sim::SuiteOptions options;
      options.cfg.gpgpu.slab_mapping_ablation = slab;
      const RunResult r = sim::run_verified(ArchKind::kGpgpu, bench, options);
      table.add_row();
      table.cell(bench);
      table.cell(std::string(slab ? "slab-64B" : "word"));
      table.cell(static_cast<double>(r.runtime_ps) / 1e6, 1);
      table.cell(static_cast<double>(r.stats.at("sm.global_lines")) /
                     static_cast<double>(r.stats.at("sm.global_load_warps")),
                 2);
      table.cell(r.row_miss_rate, 3);
    }
  }
  emit(table);
  return 0;
}
