// Ablation B (Section III-B): record-to-thread mapping granularity on the
// GPGPU. With word-size columns (the paper's "GPGPUs must use word-size
// columns to achieve coalesceable accesses"), a warp's lanes read
// consecutive words and coalesce into 1-2 cache lines; with corelet-style
// 64 B slab columns the same warp touches 16 lines per load, multiplying L1
// traffic and degrading effective bandwidth.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Ablation: interleaved-layout column width on the GPGPU",
               harness);

  Table table("Word-interleaved vs slab mapping (GPGPU)");
  table.set_columns({"bench", "mapping", "runtime_us", "lines_per_load_warp",
                     "dram_row_miss_rate"});

  std::vector<sim::MatrixJob> jobs;
  for (const std::string& bench :
       {std::string("count"), std::string("nbayes"), std::string("kmeans")}) {
    for (const bool slab : {false, true}) {
      sim::SuiteOptions options;
      options.rows = harness.rows;
      options.cfg.gpgpu.slab_mapping_ablation = slab;
      jobs.push_back({ArchKind::kGpgpu, bench, options,
                      slab ? "slab-64B" : "word"});
    }
  }
  const std::vector<RunResult> results = run_jobs(jobs, harness);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    table.add_row();
    table.cell(jobs[i].bench);
    table.cell(jobs[i].tag);
    table.cell(static_cast<double>(r.runtime_ps) / 1e6, 1);
    table.cell(static_cast<double>(r.stats.at("sm.global_lines")) /
                   static_cast<double>(r.stats.at("sm.global_load_warps")),
               2);
    table.cell(r.row_miss_rate, 3);
  }
  emit(table);
  return 0;
}
