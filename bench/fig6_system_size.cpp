// Fig. 6 reproduction: sensitivity to system size. Doubling corelets / lanes
// / cores from 32 to 64 (with correspondingly doubled memory bandwidth) must
// WIDEN Millipede's advantage: the GPGPU's branch inefficiency grows with
// wider warps, and SSMC's straying disrupts row locality more with more
// cores. All speedups are normalized to the 32-lane GPGPU.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Fig. 6: Speedup vs system size (normalized to 32-lane GPGPU)",
               harness);

  const std::vector<std::pair<std::string, ArchKind>> archs = {
      {"gpgpu", ArchKind::kGpgpu},
      {"ssmc", ArchKind::kSsmc},
      {"millipede", ArchKind::kMillipede},
  };

  std::vector<sim::MatrixJob> jobs;
  for (u32 size : {32u, 64u}) {
    sim::SuiteOptions options;
    options.rows = harness.rows;
    options.cfg.core.cores = size;
    // Paper: "correspondingly double the memory bandwidth".
    options.cfg.dram.channel_bits =
        options.cfg.dram.channel_bits * size / 32;
    for (const auto& [name, kind] : archs) {
      add_suite(&jobs, name + std::to_string(size), kind, options);
    }
  }
  std::printf("running %zu simulations...\n", jobs.size());
  std::fflush(stdout);
  std::map<std::string, SuiteResults> grid = run_grid(jobs, harness);
  std::map<u32, std::map<std::string, SuiteResults>> all;
  for (u32 size : {32u, 64u}) {
    for (const auto& [name, kind] : archs) {
      all[size][name] = std::move(grid.at(name + std::to_string(size)));
    }
  }

  const std::vector<std::string> benches = sorted_benches(all[32]["millipede"]);

  Table table("Fig. 6 — Speedup over 32-lane GPGPU");
  table.set_columns({"bench", "gpgpu32", "ssmc32", "mlp32", "gpgpu64",
                     "ssmc64", "mlp64"});
  std::map<std::string, std::vector<double>> gains;
  for (const std::string& bench : benches) {
    const double base =
        static_cast<double>(all[32]["gpgpu"].at(bench).runtime_ps);
    table.add_row();
    table.cell(bench);
    for (u32 size : {32u, 64u}) {
      for (const auto& [name, kind] : archs) {
        const double speedup =
            base / static_cast<double>(all[size][name].at(bench).runtime_ps);
        gains[name + std::to_string(size)].push_back(speedup);
        table.cell(speedup, 2);
      }
    }
  }
  table.add_row();
  table.cell(std::string("geomean"));
  for (u32 size : {32u, 64u}) {
    for (const auto& [name, kind] : archs) {
      table.cell(sim::geomean(gains[name + std::to_string(size)]), 2);
    }
  }
  emit(table);

  const double gap32 = sim::geomean(gains["millipede32"]) /
                       sim::geomean(gains["gpgpu32"]);
  const double gap64 = sim::geomean(gains["millipede64"]) /
                       sim::geomean(gains["gpgpu64"]);
  std::printf("Millipede/GPGPU gap: %.2fx at 32 lanes -> %.2fx at 64 lanes "
              "(paper: widens)\n", gap32, gap64);
  const double sgap32 = sim::geomean(gains["millipede32"]) /
                        sim::geomean(gains["ssmc32"]);
  const double sgap64 = sim::geomean(gains["millipede64"]) /
                        sim::geomean(gains["ssmc64"]);
  std::printf("Millipede/SSMC gap:  %.2fx at 32 cores -> %.2fx at 64 cores "
              "(paper: widens)\n", sgap32, sgap64);
  return 0;
}
