// Table IV reproduction: per-benchmark instructions per input word, branch
// frequency, SSMC's DRAM row miss rate, and Millipede's converged
// rate-matched clock. Paper expectations: branch frequency decreases and
// row miss rate increases down the table; the rate-matched clock correlates
// inversely with memory-boundedness (lowest for the lightest kernels).

#include "bench_common.hpp"

int main() {
  using namespace mlp;
  using namespace mlp::bench;
  print_header("Table IV: benchmark parameters and characteristics");

  sim::SuiteOptions options;
  std::printf("running millipede suite...\n");
  std::fflush(stdout);
  SuiteResults mlp_results = run_suite_map(ArchKind::kMillipede, options);
  std::printf("running ssmc suite...\n");
  std::fflush(stdout);
  SuiteResults ssmc_results = run_suite_map(ArchKind::kSsmc, options);

  const std::vector<std::string> benches = sorted_benches(mlp_results);

  Table table("Table IV — Benchmark parameters and characteristics");
  table.set_columns({"bench", "insts/word", "branches/inst",
                     "ssmc_row_miss_rate", "rate_match_clock_MHz"});
  for (const std::string& bench : benches) {
    const RunResult& m = mlp_results.at(bench);
    const RunResult& s = ssmc_results.at(bench);
    table.add_row();
    table.cell(bench);
    table.cell(m.insts_per_word, 1);
    table.cell(m.branches_per_inst, 3);
    table.cell(s.row_miss_rate, 3);
    table.cell(m.final_clock_mhz, 0);
  }
  emit(table);

  std::printf("Paper Table IV (for comparison): count 7/0.14/0.253/544 ... "
              "gda 180/0.015/0.497/644\n");
  return 0;
}
