// Table IV reproduction: per-benchmark instructions per input word, branch
// frequency, SSMC's DRAM row miss rate, and Millipede's converged
// rate-matched clock. Paper expectations: branch frequency decreases and
// row miss rate increases down the table; the rate-matched clock correlates
// inversely with memory-boundedness (lowest for the lightest kernels).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Table IV: benchmark parameters and characteristics", harness);

  sim::SuiteOptions options;
  options.rows = harness.rows;
  std::vector<sim::MatrixJob> jobs;
  add_suite(&jobs, "millipede", ArchKind::kMillipede, options);
  add_suite(&jobs, "ssmc", ArchKind::kSsmc, options);
  std::printf("running %zu simulations...\n", jobs.size());
  std::fflush(stdout);
  std::map<std::string, SuiteResults> all = run_grid(jobs, harness);
  SuiteResults& mlp_results = all.at("millipede");
  SuiteResults& ssmc_results = all.at("ssmc");

  const std::vector<std::string> benches = sorted_benches(mlp_results);

  Table table("Table IV — Benchmark parameters and characteristics");
  table.set_columns({"bench", "insts/word", "branches/inst",
                     "ssmc_row_miss_rate", "rate_match_clock_MHz"});
  for (const std::string& bench : benches) {
    const RunResult& m = mlp_results.at(bench);
    const RunResult& s = ssmc_results.at(bench);
    table.add_row();
    table.cell(bench);
    table.cell(m.insts_per_word, 1);
    table.cell(m.branches_per_inst, 3);
    table.cell(s.row_miss_rate, 3);
    table.cell(m.final_clock_mhz, 0);
  }
  emit(table);

  std::printf("Paper Table IV (for comparison): count 7/0.14/0.253/544 ... "
              "gda 180/0.015/0.497/644\n");
  return 0;
}
