// Fig. 7 reproduction: sensitivity to the prefetch buffer count. More
// entries absorb more cross-corelet work imbalance, with diminishing
// returns; the paper's curve levels off around 32 entries. Speedups are
// normalized to the 2-entry configuration of each benchmark.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace mlp;
  using namespace mlp::bench;
  const HarnessOptions harness = parse_harness(argc, argv);
  print_header("Fig. 7: Speedup vs prefetch buffer count (vs 2 entries)",
               harness);

  // Under the word-interleaved layout a record's fields occupy `fields`
  // concurrent rows, so the window is clamped per benchmark to that floor
  // (the paper's slab-interleaving layout variant would relax this).
  const std::vector<u32> counts = {2, 4, 8, 16, 32};
  std::vector<sim::MatrixJob> jobs;
  for (u32 entries : counts) {
    for (const std::string& bench : workloads::bmla_names()) {
      workloads::WorkloadParams probe;
      probe.num_records = 1;
      const u32 fields = workloads::make_bmla(bench, probe).fields;
      sim::SuiteOptions options;
      options.rows = harness.rows;
      options.cfg.millipede.pf_entries = std::max(entries, fields);
      jobs.push_back({ArchKind::kMillipede, bench, options,
                      "pf" + std::to_string(entries)});
    }
  }
  std::printf("running %zu simulations...\n", jobs.size());
  std::fflush(stdout);
  std::map<std::string, SuiteResults> grid = run_grid(jobs, harness);
  std::map<u32, SuiteResults> all;
  for (u32 entries : counts) {
    all[entries] = std::move(grid.at("pf" + std::to_string(entries)));
  }

  const std::vector<std::string> benches = sorted_benches(all[16]);

  Table table("Fig. 7 — Speedup over 2-entry prefetch buffer");
  table.set_columns({"bench", "pf2", "pf4", "pf8", "pf16", "pf32"});
  std::map<u32, std::vector<double>> gains;
  for (const std::string& bench : benches) {
    const double base = static_cast<double>(all[2].at(bench).runtime_ps);
    table.add_row();
    table.cell(bench);
    for (u32 entries : counts) {
      const double speedup =
          base / static_cast<double>(all[entries].at(bench).runtime_ps);
      gains[entries].push_back(speedup);
      table.cell(speedup, 3);
    }
  }
  table.add_row();
  table.cell(std::string("geomean"));
  for (u32 entries : counts) table.cell(sim::geomean(gains[entries]), 3);
  emit(table);

  std::printf("16 -> 32 entries geomean gain: %.1f%% (paper: levels off)\n",
              (sim::geomean(gains[32]) / sim::geomean(gains[16]) - 1.0) *
                  100.0);
  return 0;
}
