#!/usr/bin/env python3
"""bench_gate.py — perf-trajectory gate for BENCH_*.json baselines.

Compares a current bench-trajectory document (what `kernel_bench --json` or
`service_bench --json` print) against a committed baseline and exits nonzero
when the trajectory regressed. Stdlib only, so CI can run it anywhere.

Gate policy (applied recursively, to the top-level run and to each entry of
a "points" array, matched by "name"):

  * "counters" — deterministic tallies; any mismatch fails, no tolerance.
  * "metrics"  — wall-clock-derived; direction-aware relative tolerance
    (default 10%). A name ending in "_ms" is lower-is-better, anything else
    (throughput, speedup) is higher-is-better. Only REGRESSIONS fail —
    getting faster never does.
  * "info"     — reported, never gated (machine-dependent observations).
  * "config"   — must match exactly apart from NON_GATING keys; a config
    mismatch means the two runs measure different things, which is a usage
    error, not a regression.

A baseline file may hold several runs under {"runs": [...]} (e.g. the smoke
and full profiles of one benchmark); single-run documents are treated as a
one-element list. Runs are matched by (benchmark, gating-config) identity;
the current file may cover a subset of the baseline's runs, but a current
run with no baseline counterpart fails (the baseline must be regenerated
with --update when a new configuration is introduced).

Usage:
  bench_gate.py BASELINE CURRENT [--tolerance 0.10]
  bench_gate.py BASELINE CURRENT --update   # refresh matching runs in place
"""

import argparse
import json
import sys

SCHEMA = "bench-trajectory"
SCHEMA_VERSION = 1
# Config keys that change measurement effort, not the measured system;
# differing values do not make two runs incomparable.
NON_GATING_CONFIG = {"reps"}


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: not a {SCHEMA} document")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise SystemExit(
            f"{path}: schema_version {doc.get('schema_version')} "
            f"(this gate speaks {SCHEMA_VERSION})")
    runs = doc["runs"] if "runs" in doc else [doc]
    for run in runs:
        if "benchmark" not in run:
            raise SystemExit(f"{path}: run without a \"benchmark\" name")
    return runs


def run_key(run):
    """Identity of a run: benchmark plus its gating config members."""
    config = {k: v for k, v in sorted(run.get("config", {}).items())
              if k not in NON_GATING_CONFIG}
    return run["benchmark"] + " " + json.dumps(config, sort_keys=True)


def check_counters(where, base, cur, failures):
    for name in sorted(set(base) | set(cur)):
        if name not in cur:
            failures.append(f"{where}: counter {name} disappeared")
        elif name not in base:
            failures.append(
                f"{where}: counter {name} is new (regenerate the baseline "
                f"with --update)")
        elif base[name] != cur[name]:
            failures.append(
                f"{where}: counter {name}: baseline {base[name]} != "
                f"current {cur[name]}")


def check_metrics(where, base, cur, tolerance, failures):
    for name in sorted(set(base) | set(cur)):
        if name not in cur or name not in base:
            missing = "disappeared" if name not in cur else "is new"
            failures.append(f"{where}: metric {name} {missing} "
                            f"(regenerate the baseline with --update)")
            continue
        b, c = float(base[name]), float(cur[name])
        if b == 0:
            continue  # degenerate baseline; nothing to measure against
        lower_is_better = name.endswith("_ms")
        change = (c - b) / b
        regression = change > tolerance if lower_is_better \
            else change < -tolerance
        if regression:
            failures.append(
                f"{where}: metric {name} regressed "
                f"{abs(change) * 100.0:.1f}% (baseline {b:g}, current {c:g}, "
                f"tolerance {tolerance * 100.0:.0f}%)")


def check_run(where, base, cur, tolerance, failures):
    check_counters(where, base.get("counters", {}), cur.get("counters", {}),
                   failures)
    check_metrics(where, base.get("metrics", {}), cur.get("metrics", {}),
                  tolerance, failures)
    base_points = {p["name"]: p for p in base.get("points", [])}
    cur_points = {p["name"]: p for p in cur.get("points", [])}
    for name in sorted(set(base_points) | set(cur_points)):
        if name not in cur_points:
            failures.append(f"{where}: point {name} disappeared")
        elif name not in base_points:
            failures.append(f"{where}: point {name} is new (regenerate the "
                            f"baseline with --update)")
        else:
            check_run(f"{where} [{name}]", base_points[name],
                      cur_points[name], tolerance, failures)


def update_baseline(baseline_path, base_runs, cur_runs):
    merged = {run_key(r): r for r in base_runs}
    for run in cur_runs:
        merged[run_key(run)] = run
    doc = {"schema": SCHEMA, "schema_version": SCHEMA_VERSION,
           "runs": [merged[k] for k in sorted(merged)]}
    with open(baseline_path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(
        description="perf-trajectory gate for bench-trajectory JSON")
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly produced --json output")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="relative metric regression bound "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--update", action="store_true",
                        help="write the current runs into the baseline "
                             "instead of gating")
    args = parser.parse_args()

    base_runs = load_runs(args.baseline)
    cur_runs = load_runs(args.current)
    if args.update:
        update_baseline(args.baseline, base_runs, cur_runs)
        print(f"bench_gate: baseline {args.baseline} updated "
              f"({len(cur_runs)} run(s) merged)")
        return 0

    by_key = {run_key(r): r for r in base_runs}
    failures = []
    for run in cur_runs:
        key = run_key(run)
        where = run["benchmark"]
        profile = run.get("config", {}).get("profile")
        if profile:
            where += f"/{profile}"
        if key not in by_key:
            failures.append(
                f"{where}: no baseline run for this configuration "
                f"({key}); regenerate with --update")
            continue
        check_run(where, by_key[key], run, args.tolerance, failures)

    if failures:
        print(f"bench_gate: FAIL ({len(failures)} finding(s)) "
              f"comparing {args.current} against {args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench_gate: OK — {len(cur_runs)} run(s) within "
          f"{args.tolerance * 100.0:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
