#!/usr/bin/env python3
"""Validate simulator observability artifacts (CI smoke checker).

Usage:
  check_trace.py --chrome-trace FILE [--require-kinds k1,k2,...]
  check_trace.py --stats-json FILE
  check_trace.py --interval-csv FILE
  check_trace.py --service-response FILE [--expect-cache-hits N]
  check_trace.py --snapshot FILE

Checks (stdlib only, no dependencies):
  Chrome trace: document parses, has displayTimeUnit + traceEvents, event
  timestamps are sorted, every event's tid has a thread_name metadata
  record, B/E stall slices balance per track, and (optionally) all
  --require-kinds event names appear at least once.
  Stats JSON:  schema_version matches, every run entry has arch/bench/ok/
  error/config, successful runs carry metrics and a non-empty counters
  object of non-negative integers.
  Interval CSV: header starts cycle,ps and ends row_hit_rate,ipc; rows are
  rectangular; the cycle column strictly increases.
  Service response: a file of raw mlpserved response frames (mlpclient
  --raw output, one JSON object per line): every frame carries the ok/type
  envelope, errors carry a typed kind, result responses embed a parseable
  stats run object consistent with the stats-JSON run schema, and status
  responses carry the cache counter block (--expect-cache-hits asserts a
  minimum observed hits value across them).
  Snapshot: an MLPSNAP checkpoint blob (mlpsim --checkpoint-out): magic +
  version header, a well-formed section table (every section's length
  inside the blob, no duplicate ids, meta first, stats last), a fully
  consumed meta section with a non-empty arch label and a nonzero capture
  cycle, and — when the DRAM delta section is present — strictly ordered,
  disjoint, in-bounds delta runs that sum to the section's payload.

Exit status 0 on success; prints the first violation and exits 1 otherwise.
"""

import argparse
import json
import sys


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_chrome_trace(path, require_kinds):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("displayTimeUnit") not in ("ns", "ms"):
        fail(f"{path}: missing/invalid displayTimeUnit")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    thread_names = {}
    process_named = False
    last_ts = None
    open_slices = {}
    seen_kinds = {}
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "process_name":
                process_named = True
            elif event.get("name") == "thread_name":
                thread_names[event["tid"]] = event["args"]["name"]
            continue
        if ph not in ("B", "E", "i", "C"):
            fail(f"{path}: event {i} has unknown phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{path}: event {i} has no numeric ts")
        if last_ts is not None and ts < last_ts:
            fail(f"{path}: event {i} unsorted (ts {ts} < {last_ts})")
        last_ts = ts
        tid = event.get("tid")
        if tid not in thread_names:
            fail(f"{path}: event {i} uses unnamed tid {tid}")
        seen_kinds[event.get("name")] = seen_kinds.get(event.get("name"), 0) + 1
        if event.get("name") == "REF":
            args_obj = event.get("args")
            if not isinstance(args_obj, dict):
                fail(f"{path}: event {i} REF without args")
            for key in ("rank", "debt"):
                if not isinstance(args_obj.get(key), int):
                    fail(f"{path}: event {i} REF args lack integer {key!r}")
        if ph == "B":
            open_slices[tid] = open_slices.get(tid, 0) + 1
        elif ph == "E":
            if open_slices.get(tid, 0) <= 0:
                fail(f"{path}: event {i} ends a slice that never began")
            open_slices[tid] -= 1
    if not process_named:
        fail(f"{path}: no process_name metadata")
    for tid, depth in open_slices.items():
        if depth != 0:
            fail(f"{path}: {depth} unclosed slice(s) on tid {tid}")
    for kind in require_kinds:
        if seen_kinds.get(kind, 0) == 0:
            fail(f"{path}: required event kind {kind!r} never emitted "
                 f"(saw: {sorted(seen_kinds)})")
    print(f"check_trace: OK {path}: {sum(seen_kinds.values())} events, "
          f"{len(thread_names)} named tracks, kinds={sorted(seen_kinds)}")


def check_stats_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema_version") != 3:
        fail(f"{path}: schema_version != 3")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail(f"{path}: runs missing or empty")
    for i, run in enumerate(runs):
        check_run_object(path, f"run {i}", run)
    print(f"check_trace: OK {path}: {len(runs)} run(s)")


SERVICE_ERROR_KINDS = {
    "queue-full", "bad-request", "no-such-job", "job-running",
    "job-pending", "job-done", "shutting-down",
}


def check_run_object(path, where, run):
    """One stats run object (shared by stats-JSON docs and result frames)."""
    for field in ("arch", "bench", "tag", "ok", "error", "config"):
        if field not in run:
            fail(f"{path}: {where} missing {field!r}")
    config = run["config"]
    if not isinstance(config, dict):
        fail(f"{path}: {where} config is not an object")
    # Schema v3: the DRAM hierarchy knobs are always present.
    for field in ("channels", "ranks", "mapping", "page_policy", "refresh"):
        if field not in config:
            fail(f"{path}: {where} config missing {field!r} (schema v3)")
    if run["ok"]:
        if run["error"]:
            fail(f"{path}: {where} ok but error set")
        counters = run.get("counters")
        if not isinstance(counters, dict) or not counters:
            fail(f"{path}: {where} ok but counters missing/empty")
        for name, value in counters.items():
            if not isinstance(value, int) or value < 0:
                fail(f"{path}: {where} counter {name!r} not a "
                     f"non-negative integer: {value!r}")
        if "metrics" not in run:
            fail(f"{path}: {where} ok but metrics missing")
    elif not run["error"]:
        fail(f"{path}: {where} failed but error empty")


def check_service_response(path, expect_cache_hits):
    with open(path, "r", encoding="utf-8") as fh:
        frames = [line for line in fh if line.strip()]
    if not frames:
        fail(f"{path}: no response frames")
    results = 0
    max_cache_hits = None
    for i, line in enumerate(frames, start=1):
        try:
            frame = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}: frame {i} is not JSON: {e}")
        if not isinstance(frame, dict):
            fail(f"{path}: frame {i} is not an object")
        if not isinstance(frame.get("ok"), bool):
            fail(f"{path}: frame {i} lacks a boolean 'ok'")
        kind = frame.get("type")
        if not isinstance(kind, str) or not kind:
            fail(f"{path}: frame {i} lacks a 'type'")
        if not frame["ok"]:
            if frame.get("error") not in SERVICE_ERROR_KINDS:
                fail(f"{path}: frame {i} error kind {frame.get('error')!r} "
                     f"is not a known typed kind")
            if not frame.get("message"):
                fail(f"{path}: frame {i} error without a message")
            continue
        if kind == "result":
            results += 1
            state = frame.get("state")
            if state not in ("done", "cancelled"):
                fail(f"{path}: frame {i} result in non-terminal "
                     f"state {state!r}")
            if state == "done":
                if not isinstance(frame.get("run_ok"), bool):
                    fail(f"{path}: frame {i} result lacks run_ok")
                if not isinstance(frame.get("cache_hit"), bool):
                    fail(f"{path}: frame {i} result lacks cache_hit")
                if not frame.get("csv", "").endswith("\n"):
                    fail(f"{path}: frame {i} csv is not a newline-terminated "
                         f"row")
                try:
                    run = json.loads(frame.get("stats", ""))
                except json.JSONDecodeError as e:
                    fail(f"{path}: frame {i} stats not parseable: {e}")
                check_run_object(path, f"frame {i} stats", run)
        elif kind == "status":
            cache = frame.get("cache")
            if not isinstance(cache, dict):
                fail(f"{path}: frame {i} status lacks the cache block")
            for counter in ("hits", "misses", "evictions", "entries",
                            "image_bytes"):
                if not isinstance(cache.get(counter), int):
                    fail(f"{path}: frame {i} cache counter {counter!r} "
                         f"missing or not an integer")
            hits = cache["hits"]
            if max_cache_hits is None or hits > max_cache_hits:
                max_cache_hits = hits
        elif kind == "submitted":
            if not isinstance(frame.get("id"), int) or frame["id"] < 1:
                fail(f"{path}: frame {i} submitted without a positive id")
    if expect_cache_hits is not None:
        if max_cache_hits is None:
            fail(f"{path}: --expect-cache-hits given but no status frame "
                 f"with cache counters found")
        if max_cache_hits < expect_cache_hits:
            fail(f"{path}: expected >= {expect_cache_hits} warm cache hits, "
                 f"status reports {max_cache_hits}")
    print(f"check_trace: OK {path}: {len(frames)} frame(s), "
          f"{results} result(s), cache_hits={max_cache_hits}")


# MLPSNAP constants (mirrors src/sim/snapshot.hpp).
SNAPSHOT_MAGIC = b"MLPSNAP\x00"
SNAPSHOT_VERSION = 2
SEC_META = 1
SEC_DRAM_DELTA = 3
SEC_STATS = 5


class SnapshotCursor:
    """Bounded little-endian reader over one section's payload."""

    def __init__(self, path, what, payload):
        self.path = path
        self.what = what
        self.buf = payload
        self.pos = 0

    def take(self, n):
        if len(self.buf) - self.pos < n:
            fail(f"{self.path}: truncated {self.what} section")
        out = self.buf[self.pos:self.pos + n]
        self.pos += n
        return out

    def u32(self):
        return int.from_bytes(self.take(4), "little")

    def u64(self):
        return int.from_bytes(self.take(8), "little")

    def string(self):
        return self.take(self.u64()).decode("utf-8", errors="replace")

    def done(self):
        return self.pos == len(self.buf)


def check_snapshot(path):
    with open(path, "rb") as fh:
        blob = fh.read()
    if len(blob) < len(SNAPSHOT_MAGIC) + 4:
        fail(f"{path}: blob shorter than its header")
    if blob[:len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        fail(f"{path}: bad magic (not an MLPSNAP blob)")
    version = int.from_bytes(blob[8:12], "little")
    if version != SNAPSHOT_VERSION:
        fail(f"{path}: unsupported snapshot version {version}")

    # Section table: (u32 id, u64 length, payload), every length in bounds.
    sections = []
    pos = 12
    while pos < len(blob):
        if len(blob) - pos < 12:
            fail(f"{path}: truncated section header at offset {pos}")
        sec_id = int.from_bytes(blob[pos:pos + 4], "little")
        length = int.from_bytes(blob[pos + 4:pos + 12], "little")
        pos += 12
        if len(blob) - pos < length:
            fail(f"{path}: section {sec_id} length {length} exceeds the blob")
        sections.append((sec_id, blob[pos:pos + length]))
        pos += length
    if not sections:
        fail(f"{path}: no sections (a captured snapshot is never empty)")
    ids = [sec_id for sec_id, _ in sections]
    if len(ids) != len(set(ids)):
        fail(f"{path}: duplicate section ids {sorted(ids)}")
    if ids[0] != SEC_META:
        fail(f"{path}: first section has id {ids[0]}, not meta")
    if ids[-1] != SEC_STATS:
        fail(f"{path}: last section has id {ids[-1]}, not stats")

    meta = SnapshotCursor(path, "meta", sections[0][1])
    meta_version = meta.u32()
    cycle = meta.u64()
    meta.u64()  # now_ps
    arch_label = meta.string()
    meta.u32()  # warp_width
    image_bytes = meta.u64()
    meta.u64()  # fault_sequence
    if not meta.done():
        fail(f"{path}: meta section has {len(meta.buf) - meta.pos} "
             f"trailing byte(s)")
    if meta_version != SNAPSHOT_VERSION:
        fail(f"{path}: meta version {meta_version} != header {version}")
    if not arch_label:
        fail(f"{path}: meta arch label is empty")
    if cycle == 0:
        fail(f"{path}: capture cycle is 0 (captures happen at a quiescent "
             f"cycle >= 1)")

    delta_runs = 0
    delta_bytes = 0
    for sec_id, payload in sections[1:]:
        if sec_id != SEC_DRAM_DELTA:
            continue
        delta = SnapshotCursor(path, "dram-delta", payload)
        n = delta.u64()
        if n != image_bytes:
            fail(f"{path}: delta image size {n} != meta image_bytes "
                 f"{image_bytes}")
        delta_runs = delta.u64()
        prev_end = 0
        for k in range(delta_runs):
            offset = delta.u64()
            length = delta.u64()
            if length == 0:
                fail(f"{path}: delta run {k} is empty")
            if offset < prev_end:
                fail(f"{path}: delta run {k} at {offset} overlaps or "
                     f"reorders the previous run ending at {prev_end}")
            if offset > n or n - offset < length:
                fail(f"{path}: delta run {k} [{offset}, {offset + length}) "
                     f"out of bounds (image is {n} bytes)")
            delta.take(length)
            delta_bytes += length
            prev_end = offset + length
        if not delta.done():
            fail(f"{path}: dram-delta section has "
                 f"{len(delta.buf) - delta.pos} trailing byte(s)")
    print(f"check_trace: OK {path}: {len(sections)} section(s), "
          f"arch={arch_label}, cycle={cycle}, delta={delta_runs} run(s)/"
          f"{delta_bytes} byte(s)")


def check_interval_csv(path):
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line.rstrip("\n") for line in fh if line.strip()]
    if not lines:
        fail(f"{path}: empty timeline")
    header = lines[0].split(",")
    if header[:2] != ["cycle", "ps"]:
        fail(f"{path}: header must start cycle,ps")
    if header[-2:] != ["row_hit_rate", "ipc"]:
        fail(f"{path}: header must end row_hit_rate,ipc")
    last_cycle = -1
    for i, line in enumerate(lines[1:], start=2):
        cells = line.split(",")
        if len(cells) != len(header):
            fail(f"{path}: line {i} has {len(cells)} cells, "
                 f"header has {len(header)}")
        cycle = int(cells[0])
        if cycle <= last_cycle:
            fail(f"{path}: line {i} cycle {cycle} not increasing")
        last_cycle = cycle
    print(f"check_trace: OK {path}: {len(lines) - 1} interval(s), "
          f"{len(header)} columns")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--chrome-trace", action="append", default=[])
    parser.add_argument("--stats-json", action="append", default=[])
    parser.add_argument("--interval-csv", action="append", default=[])
    parser.add_argument("--service-response", action="append", default=[])
    parser.add_argument("--snapshot", action="append", default=[])
    parser.add_argument("--require-kinds", default="",
                        help="comma-separated event names that must appear "
                             "in every --chrome-trace file")
    parser.add_argument("--expect-cache-hits", type=int, default=None,
                        help="minimum warm-cache hit count that some status "
                             "frame in every --service-response file must "
                             "report")
    args = parser.parse_args()
    if not (args.chrome_trace or args.stats_json or args.interval_csv
            or args.service_response or args.snapshot):
        parser.error("nothing to check")
    kinds = [k for k in args.require_kinds.split(",") if k]
    for path in args.chrome_trace:
        check_chrome_trace(path, kinds)
    for path in args.stats_json:
        check_stats_json(path)
    for path in args.interval_csv:
        check_interval_csv(path)
    for path in args.service_response:
        check_service_response(path, args.expect_cache_hits)
    for path in args.snapshot:
        check_snapshot(path)


if __name__ == "__main__":
    main()
