# Empty compiler generated dependencies file for fig5_multicore.
# This may be replaced when dependencies are built.
