file(REMOVE_RECURSE
  "CMakeFiles/ablation_voltage_scaling.dir/ablation_voltage_scaling.cpp.o"
  "CMakeFiles/ablation_voltage_scaling.dir/ablation_voltage_scaling.cpp.o.d"
  "ablation_voltage_scaling"
  "ablation_voltage_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_voltage_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
