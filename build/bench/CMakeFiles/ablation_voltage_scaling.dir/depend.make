# Empty dependencies file for ablation_voltage_scaling.
# This may be replaced when dependencies are built.
