# Empty compiler generated dependencies file for ablation_input_size.
# This may be replaced when dependencies are built.
