file(REMOVE_RECURSE
  "CMakeFiles/ablation_input_size.dir/ablation_input_size.cpp.o"
  "CMakeFiles/ablation_input_size.dir/ablation_input_size.cpp.o.d"
  "ablation_input_size"
  "ablation_input_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_input_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
