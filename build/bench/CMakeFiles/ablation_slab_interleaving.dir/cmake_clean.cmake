file(REMOVE_RECURSE
  "CMakeFiles/ablation_slab_interleaving.dir/ablation_slab_interleaving.cpp.o"
  "CMakeFiles/ablation_slab_interleaving.dir/ablation_slab_interleaving.cpp.o.d"
  "ablation_slab_interleaving"
  "ablation_slab_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slab_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
