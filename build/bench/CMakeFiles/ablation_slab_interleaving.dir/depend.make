# Empty dependencies file for ablation_slab_interleaving.
# This may be replaced when dependencies are built.
