
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_energy.cpp" "bench/CMakeFiles/fig4_energy.dir/fig4_energy.cpp.o" "gcc" "bench/CMakeFiles/fig4_energy.dir/fig4_energy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mlp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mlp_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mlp_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/gpgpu/CMakeFiles/mlp_gpgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/millipede/CMakeFiles/mlp_millipede.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/mlp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mlp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mlp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
