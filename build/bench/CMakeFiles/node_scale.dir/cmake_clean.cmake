file(REMOVE_RECURSE
  "CMakeFiles/node_scale.dir/node_scale.cpp.o"
  "CMakeFiles/node_scale.dir/node_scale.cpp.o.d"
  "node_scale"
  "node_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
