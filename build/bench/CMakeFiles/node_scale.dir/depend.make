# Empty dependencies file for node_scale.
# This may be replaced when dependencies are built.
