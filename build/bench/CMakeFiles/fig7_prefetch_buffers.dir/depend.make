# Empty dependencies file for fig7_prefetch_buffers.
# This may be replaced when dependencies are built.
