file(REMOVE_RECURSE
  "CMakeFiles/fig7_prefetch_buffers.dir/fig7_prefetch_buffers.cpp.o"
  "CMakeFiles/fig7_prefetch_buffers.dir/fig7_prefetch_buffers.cpp.o.d"
  "fig7_prefetch_buffers"
  "fig7_prefetch_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_prefetch_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
