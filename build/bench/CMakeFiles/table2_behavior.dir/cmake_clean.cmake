file(REMOVE_RECURSE
  "CMakeFiles/table2_behavior.dir/table2_behavior.cpp.o"
  "CMakeFiles/table2_behavior.dir/table2_behavior.cpp.o.d"
  "table2_behavior"
  "table2_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
