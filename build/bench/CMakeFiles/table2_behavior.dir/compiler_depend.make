# Empty compiler generated dependencies file for table2_behavior.
# This may be replaced when dependencies are built.
