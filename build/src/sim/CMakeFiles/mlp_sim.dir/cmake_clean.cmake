file(REMOVE_RECURSE
  "CMakeFiles/mlp_sim.dir/node.cpp.o"
  "CMakeFiles/mlp_sim.dir/node.cpp.o.d"
  "CMakeFiles/mlp_sim.dir/runner.cpp.o"
  "CMakeFiles/mlp_sim.dir/runner.cpp.o.d"
  "libmlp_sim.a"
  "libmlp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
