file(REMOVE_RECURSE
  "libmlp_sim.a"
)
