# Empty compiler generated dependencies file for mlp_sim.
# This may be replaced when dependencies are built.
