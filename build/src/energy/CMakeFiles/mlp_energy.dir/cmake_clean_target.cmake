file(REMOVE_RECURSE
  "libmlp_energy.a"
)
