file(REMOVE_RECURSE
  "CMakeFiles/mlp_energy.dir/energy.cpp.o"
  "CMakeFiles/mlp_energy.dir/energy.cpp.o.d"
  "libmlp_energy.a"
  "libmlp_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
