# Empty compiler generated dependencies file for mlp_energy.
# This may be replaced when dependencies are built.
