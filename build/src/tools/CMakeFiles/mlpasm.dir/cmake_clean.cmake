file(REMOVE_RECURSE
  "CMakeFiles/mlpasm.dir/mlpasm.cpp.o"
  "CMakeFiles/mlpasm.dir/mlpasm.cpp.o.d"
  "mlpasm"
  "mlpasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
