# Empty compiler generated dependencies file for mlpasm.
# This may be replaced when dependencies are built.
