file(REMOVE_RECURSE
  "CMakeFiles/mlpsim.dir/mlpsim.cpp.o"
  "CMakeFiles/mlpsim.dir/mlpsim.cpp.o.d"
  "mlpsim"
  "mlpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
