file(REMOVE_RECURSE
  "CMakeFiles/mlp_gpgpu.dir/simt_stack.cpp.o"
  "CMakeFiles/mlp_gpgpu.dir/simt_stack.cpp.o.d"
  "CMakeFiles/mlp_gpgpu.dir/sm.cpp.o"
  "CMakeFiles/mlp_gpgpu.dir/sm.cpp.o.d"
  "libmlp_gpgpu.a"
  "libmlp_gpgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_gpgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
