file(REMOVE_RECURSE
  "libmlp_gpgpu.a"
)
