# Empty compiler generated dependencies file for mlp_gpgpu.
# This may be replaced when dependencies are built.
