file(REMOVE_RECURSE
  "CMakeFiles/mlp_workloads.dir/binding.cpp.o"
  "CMakeFiles/mlp_workloads.dir/binding.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/bmla.cpp.o"
  "CMakeFiles/mlp_workloads.dir/bmla.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/classify.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/classify.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/count.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/count.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/gda.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/gda.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/kmeans.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/kmeans.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/nbayes.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/nbayes.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/pca.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/pca.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/sample.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/sample.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/kernels/variance.cpp.o"
  "CMakeFiles/mlp_workloads.dir/kernels/variance.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/layout.cpp.o"
  "CMakeFiles/mlp_workloads.dir/layout.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/skeleton.cpp.o"
  "CMakeFiles/mlp_workloads.dir/skeleton.cpp.o.d"
  "CMakeFiles/mlp_workloads.dir/workload.cpp.o"
  "CMakeFiles/mlp_workloads.dir/workload.cpp.o.d"
  "libmlp_workloads.a"
  "libmlp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
