# Empty compiler generated dependencies file for mlp_workloads.
# This may be replaced when dependencies are built.
