file(REMOVE_RECURSE
  "libmlp_workloads.a"
)
