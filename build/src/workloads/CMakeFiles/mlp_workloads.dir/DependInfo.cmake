
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/binding.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/binding.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/binding.cpp.o.d"
  "/root/repo/src/workloads/bmla.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/bmla.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/bmla.cpp.o.d"
  "/root/repo/src/workloads/kernels/classify.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/classify.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/classify.cpp.o.d"
  "/root/repo/src/workloads/kernels/count.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/count.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/count.cpp.o.d"
  "/root/repo/src/workloads/kernels/gda.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/gda.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/gda.cpp.o.d"
  "/root/repo/src/workloads/kernels/kmeans.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/kmeans.cpp.o.d"
  "/root/repo/src/workloads/kernels/nbayes.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/nbayes.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/nbayes.cpp.o.d"
  "/root/repo/src/workloads/kernels/pca.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/pca.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/pca.cpp.o.d"
  "/root/repo/src/workloads/kernels/sample.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/sample.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/sample.cpp.o.d"
  "/root/repo/src/workloads/kernels/variance.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/variance.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/kernels/variance.cpp.o.d"
  "/root/repo/src/workloads/layout.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/layout.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/layout.cpp.o.d"
  "/root/repo/src/workloads/skeleton.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/skeleton.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/skeleton.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/mlp_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/mlp_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mlp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
