file(REMOVE_RECURSE
  "CMakeFiles/mlp_isa.dir/assembler.cpp.o"
  "CMakeFiles/mlp_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/mlp_isa.dir/builder.cpp.o"
  "CMakeFiles/mlp_isa.dir/builder.cpp.o.d"
  "CMakeFiles/mlp_isa.dir/cfg.cpp.o"
  "CMakeFiles/mlp_isa.dir/cfg.cpp.o.d"
  "CMakeFiles/mlp_isa.dir/disassembler.cpp.o"
  "CMakeFiles/mlp_isa.dir/disassembler.cpp.o.d"
  "CMakeFiles/mlp_isa.dir/encoding.cpp.o"
  "CMakeFiles/mlp_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/mlp_isa.dir/isa.cpp.o"
  "CMakeFiles/mlp_isa.dir/isa.cpp.o.d"
  "CMakeFiles/mlp_isa.dir/program.cpp.o"
  "CMakeFiles/mlp_isa.dir/program.cpp.o.d"
  "libmlp_isa.a"
  "libmlp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
