# Empty compiler generated dependencies file for mlp_isa.
# This may be replaced when dependencies are built.
