file(REMOVE_RECURSE
  "libmlp_isa.a"
)
