file(REMOVE_RECURSE
  "libmlp_common.a"
)
