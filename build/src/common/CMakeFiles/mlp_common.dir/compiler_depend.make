# Empty compiler generated dependencies file for mlp_common.
# This may be replaced when dependencies are built.
