file(REMOVE_RECURSE
  "CMakeFiles/mlp_common.dir/config.cpp.o"
  "CMakeFiles/mlp_common.dir/config.cpp.o.d"
  "CMakeFiles/mlp_common.dir/stats.cpp.o"
  "CMakeFiles/mlp_common.dir/stats.cpp.o.d"
  "CMakeFiles/mlp_common.dir/table.cpp.o"
  "CMakeFiles/mlp_common.dir/table.cpp.o.d"
  "libmlp_common.a"
  "libmlp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
