file(REMOVE_RECURSE
  "CMakeFiles/mlp_millipede.dir/prefetch_buffer.cpp.o"
  "CMakeFiles/mlp_millipede.dir/prefetch_buffer.cpp.o.d"
  "CMakeFiles/mlp_millipede.dir/rate_match.cpp.o"
  "CMakeFiles/mlp_millipede.dir/rate_match.cpp.o.d"
  "libmlp_millipede.a"
  "libmlp_millipede.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_millipede.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
