file(REMOVE_RECURSE
  "libmlp_millipede.a"
)
