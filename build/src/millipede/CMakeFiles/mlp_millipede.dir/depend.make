# Empty dependencies file for mlp_millipede.
# This may be replaced when dependencies are built.
