file(REMOVE_RECURSE
  "libmlp_mem.a"
)
