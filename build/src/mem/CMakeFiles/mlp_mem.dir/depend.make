# Empty dependencies file for mlp_mem.
# This may be replaced when dependencies are built.
