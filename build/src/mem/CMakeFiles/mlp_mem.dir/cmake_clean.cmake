file(REMOVE_RECURSE
  "CMakeFiles/mlp_mem.dir/cache.cpp.o"
  "CMakeFiles/mlp_mem.dir/cache.cpp.o.d"
  "CMakeFiles/mlp_mem.dir/controller.cpp.o"
  "CMakeFiles/mlp_mem.dir/controller.cpp.o.d"
  "CMakeFiles/mlp_mem.dir/prefetcher.cpp.o"
  "CMakeFiles/mlp_mem.dir/prefetcher.cpp.o.d"
  "libmlp_mem.a"
  "libmlp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
