
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/corelet.cpp" "src/core/CMakeFiles/mlp_core.dir/corelet.cpp.o" "gcc" "src/core/CMakeFiles/mlp_core.dir/corelet.cpp.o.d"
  "/root/repo/src/core/functional.cpp" "src/core/CMakeFiles/mlp_core.dir/functional.cpp.o" "gcc" "src/core/CMakeFiles/mlp_core.dir/functional.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mlp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mlp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
