# Empty dependencies file for mlp_core.
# This may be replaced when dependencies are built.
