file(REMOVE_RECURSE
  "CMakeFiles/mlp_core.dir/corelet.cpp.o"
  "CMakeFiles/mlp_core.dir/corelet.cpp.o.d"
  "CMakeFiles/mlp_core.dir/functional.cpp.o"
  "CMakeFiles/mlp_core.dir/functional.cpp.o.d"
  "libmlp_core.a"
  "libmlp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
