file(REMOVE_RECURSE
  "libmlp_core.a"
)
