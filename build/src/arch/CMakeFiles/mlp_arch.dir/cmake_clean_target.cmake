file(REMOVE_RECURSE
  "libmlp_arch.a"
)
