# Empty dependencies file for mlp_arch.
# This may be replaced when dependencies are built.
