file(REMOVE_RECURSE
  "CMakeFiles/mlp_arch.dir/gpgpu_system.cpp.o"
  "CMakeFiles/mlp_arch.dir/gpgpu_system.cpp.o.d"
  "CMakeFiles/mlp_arch.dir/millipede_system.cpp.o"
  "CMakeFiles/mlp_arch.dir/millipede_system.cpp.o.d"
  "CMakeFiles/mlp_arch.dir/multicore_system.cpp.o"
  "CMakeFiles/mlp_arch.dir/multicore_system.cpp.o.d"
  "CMakeFiles/mlp_arch.dir/ssmc_system.cpp.o"
  "CMakeFiles/mlp_arch.dir/ssmc_system.cpp.o.d"
  "CMakeFiles/mlp_arch.dir/system.cpp.o"
  "CMakeFiles/mlp_arch.dir/system.cpp.o.d"
  "libmlp_arch.a"
  "libmlp_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlp_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
