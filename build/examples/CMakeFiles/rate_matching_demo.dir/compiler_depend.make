# Empty compiler generated dependencies file for rate_matching_demo.
# This may be replaced when dependencies are built.
