file(REMOVE_RECURSE
  "CMakeFiles/rate_matching_demo.dir/rate_matching_demo.cpp.o"
  "CMakeFiles/rate_matching_demo.dir/rate_matching_demo.cpp.o.d"
  "rate_matching_demo"
  "rate_matching_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_matching_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
