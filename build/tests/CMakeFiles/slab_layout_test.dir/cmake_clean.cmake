file(REMOVE_RECURSE
  "CMakeFiles/slab_layout_test.dir/slab_layout_test.cpp.o"
  "CMakeFiles/slab_layout_test.dir/slab_layout_test.cpp.o.d"
  "slab_layout_test"
  "slab_layout_test.pdb"
  "slab_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slab_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
