# Empty compiler generated dependencies file for slab_layout_test.
# This may be replaced when dependencies are built.
