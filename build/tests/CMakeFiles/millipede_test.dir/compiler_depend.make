# Empty compiler generated dependencies file for millipede_test.
# This may be replaced when dependencies are built.
