file(REMOVE_RECURSE
  "CMakeFiles/millipede_test.dir/millipede_test.cpp.o"
  "CMakeFiles/millipede_test.dir/millipede_test.cpp.o.d"
  "millipede_test"
  "millipede_test.pdb"
  "millipede_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/millipede_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
