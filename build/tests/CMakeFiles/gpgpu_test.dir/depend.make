# Empty dependencies file for gpgpu_test.
# This may be replaced when dependencies are built.
