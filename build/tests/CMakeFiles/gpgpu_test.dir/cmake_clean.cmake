file(REMOVE_RECURSE
  "CMakeFiles/gpgpu_test.dir/gpgpu_test.cpp.o"
  "CMakeFiles/gpgpu_test.dir/gpgpu_test.cpp.o.d"
  "gpgpu_test"
  "gpgpu_test.pdb"
  "gpgpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpgpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
