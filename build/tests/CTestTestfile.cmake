# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/millipede_test[1]_include.cmake")
include("/root/repo/build/tests/gpgpu_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/energy_test[1]_include.cmake")
include("/root/repo/build/tests/prefetcher_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/barrier_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/slab_layout_test[1]_include.cmake")
